"""The blocker-query server: threaded TCP/JSON-lines, stdlib only.

Two layers:

:class:`BlockerService`
    Transport-independent request handler — a dict in, a dict out.
    Owns the :class:`~repro.service.registry.GraphRegistry`, the
    :class:`~repro.service.cache.ArtifactCache` and one *executor
    thread per warm artifact*.  All engine work against an artifact
    runs on its executor, which (a) serialises access to the stateful
    sketch/pool machinery and (b) **coalesces** spread requests: when
    several clients query the same artifact concurrently, the executor
    drains its whole queue and answers every same-``(seeds, theta)``
    spread query with one
    :meth:`~repro.engine.evaluator.PooledEvaluator.expected_spread_many`
    call — one aliveness-matrix materialisation for the whole batch,
    bit-identical to serial execution.
:class:`ServiceServer`
    A ``socketserver.ThreadingTCPServer`` speaking JSON lines: each
    request is one ``\\n``-terminated JSON object, each response one
    JSON line.  A connection may pipeline any number of requests.

**Wire protocol v1** (see ``docs/api.md`` for the full schema): every
response carries ``"v": 1``.  Success is ``{"ok": true, "v": 1, "op":
..., "result": ...}``; failure is ``{"ok": false, "v": 1, "error":
{"code": ..., "message": ..., "op": ...}}`` with stable machine-
readable codes — ``unknown_op``, ``unknown_graph``, ``bad_params``,
``overloaded``, ``internal`` — so clients dispatch on ``code`` instead
of parsing prose (:class:`~repro.service.client.ServiceClient` maps
them to typed exceptions).

Requests (all fields beyond ``op`` optional, with server defaults)::

    {"op": "ping"}
    {"op": "graphs"}
    {"op": "stats"}
    {"op": "stats",  "graph": "toy"}   # one WARM artifact's stats
                                       # (pool + sketch gauges); never
                                       # builds — errors if not warm
    {"op": "metrics"}                  # Prometheus exposition text
    {"op": "profile", "action": "start", "hz": 67}   # also stop/
                                       # dump/status — the sampling
                                       # wall-clock profiler
    {"op": "warm",   "graph": "toy", "model": "wc", "theta": 200,
     "seed": 7, "layout": "arena"}
    {"op": "spread", "graph": "toy", "seeds": [0], "blocked": [4]}
    {"op": "block",  "graph": "toy", "budget": 2,
     "algorithm": "greedy-replace"}
    {"op": "update", "graph": "toy", "seq": 1,
     "inserts": [[0, 5, 0.3]], "deletes": [[1, 2]],
     "reweights": [[2, 3, 0.5]]}     # incremental graph delta: the
                                     # artifact is patched in place
                                     # (pool + touched sketch trees),
                                     # journaled, and re-persisted
    {"op": "shutdown"}

An ``"id"`` field, when present, is echoed in the response so
pipelining clients can match answers to questions.  ``max_pending``
bounds each artifact executor's queue: submissions beyond it are
rejected with code ``overloaded`` instead of growing the queue without
bound (load shedding; ``None`` = unbounded, the default).

**Observability** (see :mod:`repro.obs`): every request runs under a
trace — the client's ``"trace_id"`` (a string) or a server-assigned
one, echoed in every response — and ``"trace": true`` attaches the
per-phase span breakdown (queue wait, artifact resolution, engine
evaluation, sketch rebases...) to the response, which is what
``repro-imin query --trace`` prints.  Request counts, errors and
latency histograms land in the shared metrics registry; the
``metrics`` op returns it as Prometheus text (same registry the
``--metrics-port`` HTTP listener scrapes).  Requests slower than the
configured ``slow_ms`` threshold are recorded in a bounded slow-query
log (surfaced under the service-wide ``stats`` op) with their phase
summary, and an :class:`~repro.obs.EventLog` — JSON lines under
``repro-imin serve --log-json`` — gets one event per request.

**Saturation telemetry**: the layer between "a request finished" and
"the server is drowning".  Every artifact executor exports its queue
depth (``repro_executor_pending{graph=}``, incremented/decremented
under the same mutex that guards the queue, so the gauge is exact),
the queue wait of the oldest item at the most recent drain
(``repro_executor_queue_age_seconds{graph=}``), and
submitted/completed counters whose difference *is* the pending gauge
— the reconciliation invariant the tests pin.  Requests shed by the
``--max-pending`` admission guard are counted by reason in
``repro_shed_requests_total{graph=,reason=}``; queries served
directly because their executor was retired mid-flight land in
``repro_executor_direct_serves_total{graph=}``.  The accept loop
exports ``repro_inflight_requests``, the number of requests currently
inside :meth:`BlockerService.handle`.

**Profiling and SLOs**: the ``profile`` op starts/stops/dumps the
:class:`~repro.obs.SamplingProfiler` (collapsed stacks of every
thread, flamegraph-ready; ``serve --profile-hz`` arms it from boot),
and ``serve --slo p99=250ms`` evaluates declarative objectives into
``repro_slo_burn_rate{slo=}`` gauges plus a ``slo`` section under the
``stats`` op (see :mod:`repro.obs.slo`).
"""

from __future__ import annotations

import json
import queue
import socketserver
import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..core import ALGORITHMS
from ..engine.sketch import LAYOUTS
from ..engine.spec import MODELS
from ..graph import GraphDelta
from ..obs import (
    current_trace,
    DEFAULT_HZ,
    EventLog,
    global_registry,
    install_standard_collectors,
    MetricsRegistry,
    new_trace,
    NULL_LOG,
    SamplingProfiler,
    SLO,
    SLOTracker,
    span,
    Trace,
    use_trace,
)
from .cache import Artifact, ArtifactCache, ArtifactKey
from .registry import default_registry, GraphRegistry

__all__ = [
    "BlockerService",
    "ERROR_CODES",
    "PROTOCOL_VERSION",
    "RequestError",
    "ServiceServer",
    "ServiceStats",
    "serve",
]

PROTOCOL_VERSION = 1
"""Wire-protocol version stamped (as ``"v"``) into every response."""

ERROR_CODES = (
    "unknown_op",
    "unknown_graph",
    "bad_params",
    "overloaded",
    "internal",
    "draining",
)
"""Stable machine-readable error codes of the v1 envelope
(append-only).  ``draining`` is sent by the sharded front end
(:mod:`repro.service.frontend`) while it flushes in-flight requests
during a graceful shutdown — clients should reconnect and retry."""

DEFAULTS = {
    "graph": "toy",
    "model": "wc",
    "theta": 200,
    "seed": 7,
    "num_seeds": 3,
}


class RequestError(ValueError):
    """A malformed or unsatisfiable request (client's fault, 4xx-ish).

    ``code`` is the stable v1 error code the envelope carries —
    ``bad_params`` unless the raiser says otherwise.
    """

    def __init__(self, message: str, code: str = "bad_params") -> None:
        super().__init__(message)
        self.code = code


@dataclass
class ServiceStats:
    """Service-level observability counters.

    Mutated from handler threads *and* artifact executors, so every
    read-modify-write goes through the internal lock — otherwise the
    counters would silently undercount under exactly the concurrent
    load the service exists to measure.
    """

    requests: dict[str, int] = field(default_factory=dict)
    errors: int = 0
    batches: int = 0
    """Coalesced executions serving more than one spread query."""
    batched_queries: int = 0
    """Spread queries answered as part of a multi-query batch."""
    max_batch: int = 0
    on_batch: Callable[[int], None] | None = field(
        default=None, repr=False, compare=False
    )
    """Optional observer called (outside the lock) per coalesced batch
    — how BlockerService mirrors batch counts into its metrics
    registry without ServiceStats knowing about registries."""
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def count(self, op: str) -> None:
        with self._lock:
            self.requests[op] = self.requests.get(op, 0) + 1

    def count_error(self) -> None:
        with self._lock:
            self.errors += 1

    def count_batch(self, size: int) -> None:
        with self._lock:
            self.batches += 1
            self.batched_queries += size
            self.max_batch = max(self.max_batch, size)
        if self.on_batch is not None:
            self.on_batch(size)

    def as_dict(self) -> dict[str, object]:
        with self._lock:
            return {
                "requests": dict(self.requests),
                "errors": self.errors,
                "batches": self.batches,
                "batched_queries": self.batched_queries,
                "max_batch": self.max_batch,
            }


_STOP = object()


class _ExecutorTelemetry:
    """Pre-bound metric children for one executor's graph label.

    The executor mutates these on its hot paths (submit, drain), so
    the label lookup happens once per executor, not once per query.
    ``pending`` is updated under the executor's own mutex — the gauge
    mirrors ``_pending`` exactly, which is what lets the
    reconciliation test assert ``submitted - completed == pending``
    at any quiescent point.
    """

    __slots__ = (
        "pending",
        "queue_age",
        "submitted",
        "completed",
        "direct_serves",
        "shed_overloaded",
    )

    def __init__(self, metrics: MetricsRegistry, graph: str) -> None:
        self.pending = metrics.gauge(
            "repro_executor_pending",
            "Queries queued on the artifact executor, not yet drained",
            labels=("graph",),
        ).labels(graph)
        self.queue_age = metrics.gauge(
            "repro_executor_queue_age_seconds",
            "Queue wait of the oldest item at the executor's most "
            "recent drain",
            labels=("graph",),
        ).labels(graph)
        self.submitted = metrics.counter(
            "repro_executor_submitted_total",
            "Queries accepted onto the artifact executor queue",
            labels=("graph",),
        ).labels(graph)
        self.completed = metrics.counter(
            "repro_executor_completed_total",
            "Queued queries answered (result or error) by the executor",
            labels=("graph",),
        ).labels(graph)
        self.direct_serves = metrics.counter(
            "repro_executor_direct_serves_total",
            "Queries served inline because their executor was retired "
            "between lookup and submit",
            labels=("graph",),
        ).labels(graph)
        self.shed_overloaded = metrics.counter(
            "repro_shed_requests_total",
            "Queries rejected by admission control, by reason",
            labels=("graph", "reason"),
        ).labels(graph, "max_pending")

    @classmethod
    def null(cls) -> "_ExecutorTelemetry":
        """A sink for executors built outside a BlockerService (the
        children land in a throwaway registry)."""
        return cls(MetricsRegistry(), "none")


class _ArtifactExecutor:
    """One worker thread per artifact: serialisation + coalescing.

    Work items are ``(kind, params, future, trace, enqueued_at)``.
    The worker drains everything queued at wake-up, groups ``spread``
    items by ``(seeds, theta)`` and answers each group with one
    batched engine call; ``block`` items run individually (they are
    long and stateful-greedy, there is nothing to share).  Because
    every query is a pure function of the artifact key and its
    parameters, the reordering this implies is observationally
    equivalent to any serial order.

    Tracing crosses the thread boundary explicitly: the submitting
    handler passes its request trace, the worker records the queue
    wait on it and activates it (:func:`~repro.obs.use_trace`) around
    the engine call, so sketch/pool spans land on the request that
    triggered the work.  A coalesced batch runs under the *leader's*
    trace (first queued item); followers still get their queue-wait
    and evaluate spans.  Results are computed before ``set_result``
    so the handler thread never serialises a trace mid-write.

    Close is race-safe: enqueueing and the closed flag share a mutex,
    so no item can land behind the ``_STOP`` sentinel and hang its
    caller — a submit that loses the race runs the query directly
    (unbatched but correct; the artifact's own lock serialises it).
    """

    def __init__(
        self,
        artifact: Artifact,
        stats: ServiceStats,
        max_pending: int | None = None,
        telemetry: _ExecutorTelemetry | None = None,
    ) -> None:
        self._artifact = artifact
        self._stats = stats
        self._max_pending = max_pending
        self._pending = 0
        self._telemetry = (
            telemetry if telemetry is not None
            else _ExecutorTelemetry.null()
        )
        self._queue: queue.SimpleQueue = queue.SimpleQueue()
        self._mutex = threading.Lock()
        self._closed = False
        self._thread = threading.Thread(
            target=self._run,
            name=f"repro-artifact-{artifact.key.graph}",
            daemon=True,
        )
        self._thread.start()

    def submit(self, kind: str, params: dict, trace: Trace | None = None):
        with self._mutex:
            if not self._closed:
                # load shedding: reject before enqueueing, so a stalled
                # artifact cannot grow an unbounded queue of blocked
                # handler threads — clients get a typed `overloaded`
                # error and decide whether to retry
                if (
                    self._max_pending is not None
                    and self._pending >= self._max_pending
                ):
                    self._telemetry.shed_overloaded.inc()
                    raise RequestError(
                        f"artifact {self._artifact.key.graph!r} has "
                        f"{self._pending} queries pending (limit "
                        f"{self._max_pending}); retry later",
                        code="overloaded",
                    )
                future: Future = Future()
                # the increment and the put must stand or fall
                # together: a put that fails (MemoryError under real
                # pressure) leaking a pending slot would ratchet the
                # admission guard shut
                self._pending += 1
                try:
                    self._queue.put(
                        (kind, params, future, trace, time.monotonic())
                    )
                except BaseException:
                    self._pending -= 1
                    raise
                self._telemetry.pending.inc()
                self._telemetry.submitted.inc()
                enqueued = True
            else:
                enqueued = False
        if not enqueued:  # retired executor: serve directly
            self._telemetry.direct_serves.inc()
            return self._execute_one(kind, params)
        return future.result()

    def _execute_one(self, kind: str, params: dict):
        with span("service.evaluate"):
            return self._dispatch(kind, params)

    def _dispatch(self, kind: str, params: dict):
        if kind == "spread":
            return self._artifact.spread_many(
                list(params["seeds"]), [params["blocked"]],
                params["theta"],
            )[0]
        if kind == "update":
            # the work item carries a closure built by the service
            # (journal seq check + Artifact.apply_delta + sibling
            # invalidation); running it here — never coalesced — is
            # what serialises a graph mutation against the in-flight
            # queries sharing this executor
            return params["apply"]()
        return self._artifact.block(**params)

    def close(self) -> None:
        with self._mutex:
            if self._closed:
                return
            self._closed = True
            self._queue.put(_STOP)
        self._thread.join(timeout=5)
        self._telemetry.queue_age.set(0.0)

    # ------------------------------------------------------------------
    def _run(self) -> None:
        while True:
            item = self._queue.get()
            if item is _STOP:
                return
            items = [item]
            while True:
                try:
                    extra = self._queue.get_nowait()
                except queue.Empty:
                    break
                if extra is _STOP:
                    self._safe_flush(items)
                    return
                items.append(extra)
            self._safe_flush(items)

    def _safe_flush(self, items: list) -> None:
        """Flush, and on an unexpected worker-loop error fail every
        still-unresolved future instead of dying with them hanging —
        the pending accounting already happened at the top of _flush,
        so even this path leaves the gauge exact."""
        try:
            self._flush(items)
        except BaseException as error:  # noqa: BLE001 - keep worker up
            for _, _, future, _, _ in items:
                if not future.done():
                    future.set_exception(error)
                    # futures resolved before the crash were already
                    # counted inside _flush; count only the ones this
                    # path answers, keeping submitted-completed exact
                    self._telemetry.completed.inc()

    def _flush(self, items: list) -> None:
        drained_at = time.monotonic()
        oldest_wait = max(
            drained_at - enqueued_at for *_, enqueued_at in items
        )
        with self._mutex:
            self._pending -= len(items)
            self._telemetry.pending.dec(len(items))
        self._telemetry.queue_age.set(oldest_wait)
        completed = self._telemetry.completed
        spreads: dict[tuple, list] = {}
        for kind, params, future, trace, enqueued_at in items:
            if trace is not None:
                trace.add_span(
                    "service.queue_wait",
                    (drained_at - enqueued_at) * 1000.0,
                )
            if kind == "spread":
                group_key = (tuple(params["seeds"]), params["theta"])
                spreads.setdefault(group_key, []).append(
                    (params, future, trace)
                )
            else:
                try:
                    with use_trace(trace), span("service.evaluate"):
                        result = self._dispatch(kind, params)
                    future.set_result(result)
                except Exception as error:  # noqa: BLE001 - to caller
                    future.set_exception(error)
                completed.inc()
        for (seeds, theta), group in spreads.items():
            if len(group) > 1:
                self._stats.count_batch(len(group))
            # the batched call runs under the leader's trace: its spans
            # are real engine work even when followers share the answer
            leader_trace = group[0][2]
            try:
                with use_trace(leader_trace), span("service.evaluate"):
                    estimates = self._artifact.spread_many(
                        list(seeds),
                        [params["blocked"] for params, _, _ in group],
                        theta,
                    )
            except Exception as error:  # noqa: BLE001 - to callers
                for _, future, _ in group:
                    future.set_exception(error)
                    completed.inc()
                continue
            for (_, future, _), estimate in zip(group, estimates):
                future.set_result(estimate)
                completed.inc()


class BlockerService:
    """Dispatch JSON requests against the registry and artifact cache."""

    def __init__(
        self,
        registry: GraphRegistry | None = None,
        cache: ArtifactCache | None = None,
        max_entries: int = 8,
        max_bytes: int | None = None,
        cache_dir=None,
        defaults: dict | None = None,
        metrics: MetricsRegistry | None = None,
        log: EventLog | None = None,
        slow_ms: float | None = None,
        max_pending: int | None = None,
        profile_hz: float | None = None,
        slos: Sequence[SLO] | None = None,
    ) -> None:
        self.registry = registry if registry is not None else (
            cache.registry if cache is not None else default_registry()
        )
        self.cache = cache if cache is not None else ArtifactCache(
            self.registry,
            max_entries=max_entries,
            max_bytes=max_bytes,
            cache_dir=cache_dir,
        )
        self.defaults = {**DEFAULTS, **(defaults or {})}
        self.max_pending = max_pending
        """Per-artifact executor queue bound: submissions beyond it
        are rejected with error code ``overloaded`` (None = no bound)."""
        self.stats = ServiceStats()
        self._executors: dict[ArtifactKey, _ArtifactExecutor] = {}
        self._lock = threading.Lock()
        # retire an evicted artifact's executor immediately — without
        # this, the executor's strong reference to the artifact (and
        # its idle worker thread) would outlive every eviction and
        # defeat the cache's memory bound
        self.cache.on_evict = self._retire_executor
        # --- observability surface (repro.obs) ---
        # shared registry by default, so the metrics op, the
        # --metrics-port scrape and every engine-side gauge agree;
        # tests hand in a fresh MetricsRegistry for isolation
        self.metrics = metrics if metrics is not None else global_registry()
        install_standard_collectors(self.metrics)
        self.log = log if log is not None else NULL_LOG
        self.slow_ms = slow_ms
        self.slow_queries: deque[dict] = deque(maxlen=64)
        self._slow_lock = threading.Lock()
        self._m_requests = self.metrics.counter(
            "repro_requests_total",
            "Service requests dispatched, by op",
            labels=("op",),
        )
        self._m_errors = self.metrics.counter(
            "repro_request_errors_total",
            "Service requests answered with ok=false",
        )
        self._m_latency = self.metrics.histogram(
            "repro_request_duration_seconds",
            "Wall-clock request latency through BlockerService.handle",
            labels=("op",),
        )
        self._m_slow = self.metrics.counter(
            "repro_slow_queries_total",
            "Requests slower than the configured slow_ms threshold",
        )
        self._m_batches = self.metrics.counter(
            "repro_coalesced_batches_total",
            "Coalesced executions serving more than one spread query",
        )
        self._m_batched = self.metrics.counter(
            "repro_coalesced_queries_total",
            "Spread queries answered as part of a multi-query batch",
        )
        self._m_inflight = self.metrics.gauge(
            "repro_inflight_requests",
            "Requests currently inside BlockerService.handle",
        )
        self.stats.on_batch = self._count_batch_metrics
        # per-graph telemetry children are cached here so a rebuilt
        # executor (cache eviction + re-warm) keeps accumulating into
        # the same counters rather than resetting the series
        self._telemetry: dict[str, _ExecutorTelemetry] = {}
        self.profiler: SamplingProfiler | None = None
        """The service-owned sampling profiler; created lazily by the
        ``profile`` op, or at construction when ``profile_hz`` is set
        (``serve --profile-hz``)."""
        if profile_hz is not None:
            self.profiler = SamplingProfiler(
                hz=profile_hz, registry=self.metrics
            )
            self.profiler.start()
        self.slo: SLOTracker | None = (
            SLOTracker(slos, registry=self.metrics) if slos else None
        )
        """Burn-rate tracker for the configured SLOs (``serve --slo``);
        None when no objectives were declared."""

    def _count_batch_metrics(self, size: int) -> None:
        self._m_batches.inc()
        self._m_batched.inc(size)

    # ------------------------------------------------------------------
    # request plumbing
    # ------------------------------------------------------------------
    def handle(self, request: dict) -> dict:
        """One request dict -> one response dict (never raises).

        Every request runs under a :class:`~repro.obs.Trace` — the
        client's ``trace_id`` or a fresh one — whose id is echoed in
        the response; ``"trace": true`` additionally attaches the
        span tree.  Latency, counts and errors land in the metrics
        registry, one event per request in the event log, and
        requests over ``slow_ms`` in the bounded slow-query log.
        """
        op_label = "invalid"
        started = time.monotonic()
        trace = new_trace(self._client_trace_id(request))
        self._m_inflight.inc()
        try:
            with use_trace(trace):
                if not isinstance(request, dict):
                    raise RequestError("request must be a JSON object")
                op = request.get("op")
                handler = self._handlers().get(op)
                if handler is None:
                    raise RequestError(
                        f"unknown op {op!r}; expected one of "
                        + ", ".join(sorted(self._handlers())),
                        code="unknown_op",
                    )
                op_label = op
                self.stats.count(op)
                response: dict = {
                    "ok": True, "v": PROTOCOL_VERSION, "op": op,
                }
                result = handler(request)
                if result is not None:
                    response["result"] = result
        except RequestError as error:
            self.stats.count_error()
            response = _error_envelope(error.code, str(error), op_label)
        except Exception as error:  # noqa: BLE001 - report, don't die
            self.stats.count_error()
            response = _error_envelope(
                "internal", f"{type(error).__name__}: {error}", op_label
            )
        finally:
            self._m_inflight.dec()
        if isinstance(request, dict) and "id" in request:
            response["id"] = request["id"]
        response["trace_id"] = trace.trace_id
        if isinstance(request, dict) and request.get("trace"):
            response["trace"] = trace.as_dict()
        self._finish_request(
            op_label, request, response, trace,
            (time.monotonic() - started) * 1000.0,
        )
        return response

    def _client_trace_id(self, request) -> str | None:
        """The client-supplied trace id, when usable (non-empty
        string); anything else means the server assigns one."""
        if not isinstance(request, dict):
            return None
        trace_id = request.get("trace_id")
        if isinstance(trace_id, str) and trace_id.strip():
            return trace_id.strip()[:128]
        return None

    def _finish_request(
        self,
        op: str,
        request,
        response: dict,
        trace: Trace,
        duration_ms: float,
    ) -> None:
        """Metrics + event log + slow-query log for one request."""
        self._m_requests.labels(op).inc()
        self._m_latency.labels(op).observe(duration_ms / 1000.0)
        if not response.get("ok"):
            self._m_errors.inc()
        graph = (
            request.get("graph", self.defaults["graph"])
            if isinstance(request, dict)
            else None
        )
        error = response.get("error")
        self.log.event(
            "request",
            trace_id=trace.trace_id,
            op=op,
            graph=graph if op not in ("ping", "graphs", "metrics") else None,
            ok=bool(response.get("ok")),
            error=error.get("message") if isinstance(error, dict) else error,
            error_code=error.get("code") if isinstance(error, dict) else None,
            duration_ms=round(duration_ms, 3),
        )
        if self.slow_ms is not None and duration_ms >= self.slow_ms:
            self._m_slow.inc()
            record = {
                "trace_id": trace.trace_id,
                "op": op,
                "graph": graph,
                "duration_ms": round(duration_ms, 3),
                "ok": bool(response.get("ok")),
                "phases": trace.summary(),
            }
            with self._slow_lock:
                self.slow_queries.append(record)
            self.log.event("slow_query", **record)

    def _handlers(self) -> dict[str, Callable[[dict], object]]:
        return {
            "ping": lambda request: "pong",
            "graphs": self._op_graphs,
            "stats": self._op_stats,
            "metrics": self._op_metrics,
            "profile": self._op_profile,
            "warm": self._op_warm,
            "spread": self._op_spread,
            "block": self._op_block,
            "update": self._op_update,
            # "shutdown" is transport-level; the TCP layer intercepts
            # it before dispatch and this entry only documents the op
            "shutdown": lambda request: "bye",
        }

    # ------------------------------------------------------------------
    # parameter resolution
    # ------------------------------------------------------------------
    def _artifact_key(self, request: dict) -> ArtifactKey:
        graph = request.get("graph", self.defaults["graph"])
        model = request.get("model", self.defaults["model"])
        if graph not in self.registry:
            raise RequestError(
                f"unknown graph {graph!r}; registered: "
                + ", ".join(self.registry.names()),
                code="unknown_graph",
            )
        if model not in MODELS:
            raise RequestError(
                f"unknown model {model!r}; expected one of "
                + ", ".join(MODELS)
            )
        layout = request.get("layout", self.defaults.get("layout", "arena"))
        if layout not in LAYOUTS:
            raise RequestError(
                f"unknown layout {layout!r}; expected one of "
                + ", ".join(LAYOUTS)
            )
        theta = _as_int(request, "theta", self.defaults["theta"])
        if theta <= 0:
            raise RequestError("theta must be positive")
        seed = _as_int(request, "seed", self.defaults["seed"])
        return ArtifactKey(graph, model, theta, seed, layout)

    def _artifact(self, key: ArtifactKey) -> Artifact:
        try:
            return self.cache.get(key)
        except (KeyError, ValueError) as error:
            raise RequestError(str(error)) from error

    def _executor(self, key: ArtifactKey) -> _ArtifactExecutor:
        artifact = self._artifact(key)
        with self._lock:
            executor = self._executors.get(key)
            if executor is None or executor._artifact is not artifact:
                # first query for this key, or the cache evicted and
                # rebuilt the artifact since — retire the old worker
                if executor is not None:
                    executor.close()
                telemetry = self._telemetry.get(key.graph)
                if telemetry is None:
                    telemetry = _ExecutorTelemetry(self.metrics, key.graph)
                    self._telemetry[key.graph] = telemetry
                executor = _ArtifactExecutor(
                    artifact,
                    self.stats,
                    max_pending=self.max_pending,
                    telemetry=telemetry,
                )
                self._executors[key] = executor
            return executor

    def _retire_executor(self, key: ArtifactKey, artifact) -> None:
        """Cache-eviction hook: reap the evicted key's worker thread."""
        with self._lock:
            executor = self._executors.pop(key, None)
        if executor is not None:
            executor.close()

    def _seeds(self, request: dict, artifact: Artifact) -> list[int]:
        seeds = request.get("seeds")
        if seeds is None:
            count = _as_int(
                request, "num_seeds", self.defaults["num_seeds"]
            )
            if count < 1:
                raise RequestError("num_seeds must be >= 1")
            return artifact.default_seeds(count)
        seeds = _vertex_list(seeds, "seeds", artifact.csr.n)
        if not seeds:
            raise RequestError("seeds must be non-empty")
        return seeds

    # ------------------------------------------------------------------
    # ops
    # ------------------------------------------------------------------
    def _op_graphs(self, request: dict) -> list[dict]:
        return self.registry.describe()

    def _op_stats(self, request: dict) -> dict:
        """Service-wide stats — or one warm artifact's stats when the
        request names any artifact-key field.

        The per-artifact form returns the artifact's description
        (pool counters plus ``SketchStats.as_dict()``, including the
        arena/postings byte gauges of the query path) **without ever
        building**: observability must not trigger, or block behind,
        the most expensive operation the service performs.  A key that
        is not resident is a request error naming the fix (warm it).
        ``"artifact": true`` selects the per-artifact form with the
        server's default key fields (what ``repro-imin query --stats``
        sends when no key fields were given).
        """
        if request.get("artifact") or any(
            f in request for f in ("graph", "model", "theta", "seed")
        ):
            key = self._artifact_key(request)
            artifact = self.cache.peek(key)
            if artifact is None:
                raise RequestError(
                    f"artifact {key.as_dict()} is not warm; warm it "
                    "first (op=warm) or query it (op=spread/block)"
                )
            return artifact.describe()
        with self._slow_lock:
            slow = list(self.slow_queries)
        result: dict[str, object] = {
            "service": self.stats.as_dict(),
            "cache": self.cache.describe(),
            "slow_queries": slow,
        }
        if self.slo is not None:
            result["slo"] = self.slo.as_dict()
        if self.profiler is not None:
            result["profiler"] = self.profiler.stats()
        return result

    def _op_profile(self, request: dict) -> dict:
        """Drive the sampling profiler on the live server.

        Actions: ``start`` (optional ``hz``; errors if already
        running, recreates the profiler when ``hz`` differs from the
        current one), ``stop``, ``status``, and ``dump`` — stats plus
        the collapsed-stack text (optionally truncated to the ``limit``
        hottest stacks), ready for ``flamegraph.pl``.
        """
        action = request.get("action", "status")
        if action not in ("start", "stop", "dump", "status"):
            raise RequestError(
                f"unknown profile action {action!r}; expected one of "
                "start, stop, dump, status"
            )
        if action == "start":
            hz = request.get("hz", DEFAULT_HZ)
            if isinstance(hz, bool) or not isinstance(hz, (int, float)):
                raise RequestError("hz must be a number")
            if self.profiler is not None and self.profiler.active:
                raise RequestError(
                    f"profiler already running at {self.profiler.hz:g} "
                    "Hz; stop it first"
                )
            if self.profiler is None or self.profiler.hz != float(hz):
                try:
                    self.profiler = SamplingProfiler(
                        hz=float(hz), registry=self.metrics
                    )
                except ValueError as error:
                    raise RequestError(str(error)) from error
            self.profiler.start()
            return self.profiler.stats()
        if self.profiler is None:
            raise RequestError(
                "profiler was never started (op=profile action=start, "
                "or serve --profile-hz)"
            )
        if action == "stop":
            return self.profiler.stop()
        if action == "dump":
            limit = request.get("limit")
            if limit is not None:
                limit = _as_int(request, "limit", 0)
                if limit < 1:
                    raise RequestError("limit must be >= 1")
            return {
                **self.profiler.stats(),
                "collapsed": self.profiler.collapsed(limit),
            }
        return self.profiler.stats()

    def _op_metrics(self, request: dict) -> str:
        """Prometheus text exposition of the service's registry — the
        same families the ``--metrics-port`` HTTP endpoint serves, so
        JSON-lines-only deployments still get a scrapeable surface."""
        return self.metrics.render()

    def _op_warm(self, request: dict) -> dict:
        key = self._artifact_key(request)
        with span("service.resolve"):
            artifact = self._artifact(key)
        if request.get("seeds") is not None or request.get("sketch"):
            artifact.warm_sketch(self._seeds(request, artifact))
        return artifact.describe()

    def _op_spread(self, request: dict) -> dict:
        key = self._artifact_key(request)
        with span("service.resolve"):
            artifact = self._artifact(key)
        seeds = self._seeds(request, artifact)
        blocked = _vertex_list(
            request.get("blocked", []), "blocked", artifact.csr.n
        )
        seed_set = set(seeds)
        dropped = sorted(set(blocked) & seed_set)
        blocked = [v for v in blocked if v not in seed_set]
        estimate = self._executor(key).submit(
            "spread",
            {"seeds": seeds, "blocked": blocked, "theta": key.theta},
            trace=current_trace(),
        )
        result = {
            **key.as_dict(),
            "seeds": seeds,
            "blocked": blocked,
            "spread": estimate,
        }
        if dropped:
            result["ignored_seed_blockers"] = dropped
        return result

    def _op_block(self, request: dict) -> dict:
        key = self._artifact_key(request)
        with span("service.resolve"):
            artifact = self._artifact(key)
        seeds = self._seeds(request, artifact)
        budget = _as_int(request, "budget", 10)
        if budget < 1:
            raise RequestError("budget must be >= 1")
        algorithm = request.get(
            "algorithm", self.defaults.get("algorithm", "greedy-replace")
        )
        if algorithm not in ALGORITHMS:
            raise RequestError(
                f"unknown algorithm {algorithm!r}; expected one of "
                + ", ".join(ALGORITHMS)
            )
        rng = request.get("rng")
        if rng is not None:
            rng = _as_int(request, "rng", 0)
        outcome = self._executor(key).submit(
            "block",
            {
                "seeds": seeds,
                "budget": budget,
                "algorithm": algorithm,
                "theta": key.theta,
                "rng": rng,
            },
            trace=current_trace(),
        )
        return {**key.as_dict(), "seeds": seeds, "budget": budget, **outcome}

    def _op_update(self, request: dict) -> dict:
        """Apply one batched graph delta to the keyed warm artifact.

        The delta rides the executor as its own (never-coalesced)
        work-item kind, so it serialises with the in-flight spread and
        block queries sharing the artifact — a query observes either
        the whole delta or none of it.  ``seq`` is the client's
        monotone sequence number: a duplicate (connection-reset
        resend) is acknowledged with ``applied: false`` instead of
        double-applied, which is why the client deliberately keeps
        ``update`` *out* of its idempotent-retry set.  Applied deltas
        land in the cache's journal, so evicted siblings and restarted
        workers rebuild onto the post-delta graph and rehydrate the
        re-persisted (post-delta fingerprint) mmap artifacts.
        """
        key = self._artifact_key(request)
        payload = {
            field_name: request[field_name]
            for field_name in ("inserts", "deletes", "reweights")
            if field_name in request
        }
        try:
            delta = GraphDelta.from_dict(payload)
        except (TypeError, ValueError) as error:
            raise RequestError(str(error)) from error
        if not delta:
            raise RequestError(
                "update needs at least one of inserts, deletes, "
                "reweights"
            )
        seq = request.get("seq")
        if seq is not None:
            seq = _as_int(request, "seq", 0)
            if seq < 1:
                raise RequestError("seq must be >= 1")
        with span("service.resolve"):
            self._artifact(key)
        try:
            outcome = self._executor(key).submit(
                "update",
                {"apply": lambda: self.cache.apply_delta(key, delta, seq)},
                trace=current_trace(),
            )
        except RequestError:
            raise
        except (KeyError, ValueError) as error:
            # delta validation against the live graph (missing edge,
            # existing insert, vertex out of range) surfaces from the
            # executor as the engine's ValueError — client's fault
            raise RequestError(str(error)) from error
        return {**key.as_dict(), **outcome}

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        if self.profiler is not None:
            self.profiler.stop()
        with self._lock:
            executors = list(self._executors.values())
            self._executors.clear()
        for executor in executors:
            executor.close()
        self.cache.close()


def _error_envelope(code: str, message: str, op: str | None) -> dict:
    """The v1 failure envelope: a structured, code-first error object."""
    return {
        "ok": False,
        "v": PROTOCOL_VERSION,
        "error": {"code": code, "message": message, "op": op},
    }


def _as_int(request: dict, field_name: str, default: int) -> int:
    value = request.get(field_name, default)
    if isinstance(value, bool) or not isinstance(value, int):
        raise RequestError(f"{field_name} must be an integer")
    return value


def _vertex_list(value, field_name: str, n: int) -> list[int]:
    if not isinstance(value, (list, tuple)):
        raise RequestError(f"{field_name} must be a list of vertex ids")
    out: list[int] = []
    for v in value:
        if isinstance(v, bool) or not isinstance(v, int):
            raise RequestError(f"{field_name} must contain integers")
        if not 0 <= v < n:
            raise RequestError(
                f"{field_name} id {v} out of range [0, {n})"
            )
        out.append(v)
    return out


# ----------------------------------------------------------------------
# TCP transport
# ----------------------------------------------------------------------
class _Handler(socketserver.StreamRequestHandler):
    def handle(self) -> None:  # pragma: no branch - loop structure
        for raw in self.rfile:
            line = raw.strip()
            if not line:
                continue
            try:
                request = json.loads(line)
            except json.JSONDecodeError as error:
                self._send(
                    _error_envelope(
                        "bad_params", f"bad JSON: {error}", None
                    )
                )
                continue
            is_shutdown = (
                isinstance(request, dict)
                and request.get("op") == "shutdown"
            )
            if is_shutdown:
                service = self.server.service
                service.stats.count("shutdown")
                trace_id = service._client_trace_id(request)
                if trace_id is None:
                    trace_id = new_trace().trace_id
                service.log.event(
                    "shutdown", trace_id=trace_id, op="shutdown"
                )
                self._send({
                    "ok": True,
                    "v": PROTOCOL_VERSION,
                    "op": "shutdown",
                    "result": "bye",
                    "trace_id": trace_id,
                })
                # shutdown() joins the serve_forever loop (a different
                # thread); detach so this handler can finish its own
                # connection first
                threading.Thread(
                    target=self.server.shutdown, daemon=True
                ).start()
                return
            self._send(self.server.service.handle(request))

    def _send(self, response: dict) -> None:
        self.wfile.write(
            json.dumps(response, separators=(",", ":")).encode() + b"\n"
        )
        self.wfile.flush()


class ServiceServer(socketserver.ThreadingTCPServer):
    """JSON-lines TCP front of a :class:`BlockerService`.

    ``port=0`` binds an ephemeral port (see ``server_address[1]``) —
    what the tests and benchmark harness use.
    """

    allow_reuse_address = True
    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int],
        service: BlockerService,
    ) -> None:
        super().__init__(address, _Handler)
        self.service = service

    def server_close(self) -> None:
        super().server_close()
        self.service.close()


def serve(
    host: str = "127.0.0.1",
    port: int = 0,
    service: BlockerService | None = None,
    **service_kwargs,
) -> ServiceServer:
    """Bind a :class:`ServiceServer` (without entering its loop).

    Callers run ``server.serve_forever()`` themselves — the CLI does
    it on the main thread, tests in a daemon thread.
    """
    if service is None:
        service = BlockerService(**service_kwargs)
    return ServiceServer((host, port), service)
