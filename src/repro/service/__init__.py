"""repro.service — the long-lived blocker-query serving layer.

The engine (PR 1) made spread evaluation fast in-process and the
sketch index (PR 2) made marginal gains O(1) after a one-time build —
but a CLI invocation still pays the full load -> sample -> index cost
before answering a single query.  This subsystem keeps those expensive
artifacts resident and serves many queries against them:

:mod:`repro.service.registry`
    Named-graph registry: datasets, the toy graph and (optionally
    gzip-compressed) SNAP edge lists resolved by name, loaded lazily.
:mod:`repro.service.cache`
    Size-bounded LRU of warm ``(SamplePool, SketchIndex)`` artifacts
    keyed by ``(graph, model, theta, seed, layout)``, with
    hit/miss/eviction stats and disk rehydration of both the pool's
    samples and the sketch's arena views through their persistence.
:mod:`repro.service.server`
    Threaded TCP/JSON-lines server (stdlib only) exposing ``block``,
    ``spread``, ``warm``, ``stats`` and ``graphs`` over the versioned
    v1 wire protocol (structured error envelope, stable error codes),
    with per-artifact request coalescing: concurrent spread queries
    against one artifact collapse into one vectorized engine call.
:mod:`repro.service.client`
    The matching client — typed query verbs, error codes mapped to
    typed exceptions, one bounded retry over drains and worker
    restarts; ``repro-imin serve`` / ``repro-imin query`` make the
    CLI a thin shell around both.
:mod:`repro.service.frontend`
    The scale-out tier: an asyncio listener sharding the named-graph
    space over N worker processes (``serve --serve-workers N``), with
    global admission control, crash supervision, graceful drain,
    access-log prewarming and merged observability.
"""

from .cache import (
    Artifact,
    ArtifactCache,
    ArtifactKey,
    CacheStats,
    DeltaJournal,
)
from .client import (
    BadParamsError,
    ConnectionLostError,
    DEFAULT_PORT,
    DrainingError,
    IDEMPOTENT_OPS,
    OverloadedError,
    ServiceClient,
    ServiceError,
    UnknownGraphError,
    UnknownOpError,
)
from .frontend import shard_for, ShardedFrontend, WorkerSpec
from .registry import default_registry, GraphEntry, GraphRegistry
from .server import (
    BlockerService,
    ERROR_CODES,
    PROTOCOL_VERSION,
    RequestError,
    serve,
    ServiceServer,
    ServiceStats,
)

__all__ = [
    "Artifact",
    "ArtifactCache",
    "ArtifactKey",
    "CacheStats",
    "DeltaJournal",
    "GraphEntry",
    "GraphRegistry",
    "default_registry",
    "BlockerService",
    "ERROR_CODES",
    "PROTOCOL_VERSION",
    "RequestError",
    "ServiceServer",
    "ServiceStats",
    "serve",
    "BadParamsError",
    "ConnectionLostError",
    "DrainingError",
    "IDEMPOTENT_OPS",
    "OverloadedError",
    "ServiceClient",
    "ServiceError",
    "UnknownGraphError",
    "UnknownOpError",
    "DEFAULT_PORT",
    "ShardedFrontend",
    "WorkerSpec",
    "shard_for",
]
