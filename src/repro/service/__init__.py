"""repro.service — the long-lived blocker-query serving layer.

The engine (PR 1) made spread evaluation fast in-process and the
sketch index (PR 2) made marginal gains O(1) after a one-time build —
but a CLI invocation still pays the full load -> sample -> index cost
before answering a single query.  This subsystem keeps those expensive
artifacts resident and serves many queries against them:

:mod:`repro.service.registry`
    Named-graph registry: datasets, the toy graph and (optionally
    gzip-compressed) SNAP edge lists resolved by name, loaded lazily.
:mod:`repro.service.cache`
    Size-bounded LRU of warm ``(SamplePool, SketchIndex)`` artifacts
    keyed by ``(graph, model, theta, seed)``, with hit/miss/eviction
    stats and disk rehydration through the pool's persistence.
:mod:`repro.service.server`
    Threaded TCP/JSON-lines server (stdlib only) exposing ``block``,
    ``spread``, ``warm``, ``stats`` and ``graphs``, with per-artifact
    request coalescing: concurrent spread queries against one artifact
    collapse into one vectorized engine call.
:mod:`repro.service.client`
    The matching client; ``repro-imin serve`` / ``repro-imin query``
    make the CLI a thin shell around both.
"""

from .cache import Artifact, ArtifactCache, ArtifactKey, CacheStats
from .client import DEFAULT_PORT, ServiceClient, ServiceError
from .registry import default_registry, GraphEntry, GraphRegistry
from .server import (
    BlockerService,
    RequestError,
    serve,
    ServiceServer,
    ServiceStats,
)

__all__ = [
    "Artifact",
    "ArtifactCache",
    "ArtifactKey",
    "CacheStats",
    "GraphEntry",
    "GraphRegistry",
    "default_registry",
    "BlockerService",
    "RequestError",
    "ServiceServer",
    "ServiceStats",
    "serve",
    "ServiceClient",
    "ServiceError",
    "DEFAULT_PORT",
]
