"""JSON-lines client for the blocker-query service.

:class:`ServiceClient` keeps one TCP connection and pipelines requests
over it; `repro-imin query` is a thin shell around it.  Stdlib only.
"""

from __future__ import annotations

import json
import socket
import time

__all__ = ["DEFAULT_PORT", "ServiceClient", "ServiceError"]

DEFAULT_PORT = 7727


class ServiceError(RuntimeError):
    """The server answered ``{"ok": false}`` (or not at all)."""


class ServiceClient:
    """One connection to a :class:`~repro.service.server.ServiceServer`.

    Usable as a context manager; the connection is opened lazily on
    the first request and survives any number of them.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        timeout: float = 60.0,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._sock: socket.socket | None = None
        self._reader = None

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    def connect(self) -> None:
        if self._sock is not None:
            return
        sock = socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        )
        self._sock = sock
        self._reader = sock.makefile("rb")

    def close(self) -> None:
        if self._sock is None:
            return
        try:
            self._reader.close()
            self._sock.close()
        except OSError:  # pragma: no cover - best-effort teardown
            pass
        self._sock = None
        self._reader = None

    def __enter__(self) -> "ServiceClient":
        self.connect()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # requests
    # ------------------------------------------------------------------
    def request(self, op: str, **params) -> dict:
        """Send one request; return the full response envelope."""
        self.connect()
        payload = {"op": op}
        payload.update(
            (k, v) for k, v in params.items() if v is not None
        )
        self._sock.sendall(
            json.dumps(payload, separators=(",", ":")).encode() + b"\n"
        )
        line = self._reader.readline()
        if not line:
            self.close()
            raise ServiceError(
                f"server at {self.host}:{self.port} closed the connection"
            )
        return json.loads(line)

    def call(self, op: str, **params):
        """Send one request; return its ``result`` or raise."""
        response = self.request(op, **params)
        if not response.get("ok"):
            raise ServiceError(
                response.get("error", "unspecified server error")
            )
        return response.get("result")

    # ------------------------------------------------------------------
    # convenience verbs
    # ------------------------------------------------------------------
    def ping(self) -> bool:
        return self.call("ping") == "pong"

    def graphs(self) -> list[dict]:
        return self.call("graphs")

    def stats(self) -> dict:
        return self.call("stats")

    def metrics(self) -> str:
        """Prometheus text exposition of the server's registry."""
        return self.call("metrics")

    def warm(self, **params) -> dict:
        return self.call("warm", **params)

    def spread(self, **params) -> dict:
        return self.call("spread", **params)

    def block(self, **params) -> dict:
        return self.call("block", **params)

    def shutdown(self) -> None:
        """Ask the server to exit; tolerates the connection dropping."""
        try:
            self.call("shutdown")
        except (ServiceError, OSError):  # pragma: no cover - racy close
            pass
        finally:
            self.close()

    def wait_until_ready(self, deadline: float = 10.0) -> bool:
        """Poll ``ping`` until the server answers or ``deadline`` (s)
        passes — for scripts that just forked a ``repro serve``."""
        end = time.monotonic() + deadline
        while time.monotonic() < end:
            try:
                if self.ping():
                    return True
            except (OSError, ServiceError, json.JSONDecodeError):
                self.close()
                time.sleep(0.05)
        return False
