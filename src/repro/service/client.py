"""JSON-lines client for the blocker-query service.

:class:`ServiceClient` keeps one TCP connection and pipelines requests
over it; `repro-imin query` is a thin shell around it.  Stdlib only.

The client speaks wire-protocol **v1** (see ``docs/api.md``): server
failures arrive as a structured error object ``{"code", "message",
"op"}`` and are raised as *typed* exceptions — :class:`UnknownOpError`,
:class:`UnknownGraphError`, :class:`BadParamsError`,
:class:`OverloadedError` — all subclasses of :class:`ServiceError`, so
``except ServiceError`` keeps catching everything.  Legacy plain-string
errors (pre-v1 servers) are still accepted for one release and raised
as bare :class:`ServiceError`.

The query verbs (:meth:`ServiceClient.warm`, :meth:`~ServiceClient.
spread`, :meth:`~ServiceClient.block`) take keyword-only, typed
parameters and validate them client-side — malformed calls fail with
:class:`BadParamsError` before touching the network.
"""

from __future__ import annotations

import json
import socket
import time
from typing import Sequence

__all__ = [
    "BadParamsError",
    "ConnectionLostError",
    "DEFAULT_PORT",
    "DrainingError",
    "IDEMPOTENT_OPS",
    "OverloadedError",
    "ServiceClient",
    "ServiceError",
    "UnknownGraphError",
    "UnknownOpError",
]

DEFAULT_PORT = 7727

IDEMPOTENT_OPS = frozenset(
    ("ping", "graphs", "stats", "metrics", "warm", "spread", "block")
)
"""Ops safe to resend after a dropped connection or a ``draining``
reply: they either read state or converge to the same artifact/answer
when repeated (``block`` is a deterministic function of its params).
``shutdown`` and ``profile`` mutate and are never retried — and so is
``update``: a graph delta is applied exactly once, so the client never
blind-resends it.  Callers who want at-least-once delivery pass a
monotone ``seq`` and resend explicitly; the server acknowledges a
duplicate ``seq`` with ``applied: false`` instead of re-applying."""


class ServiceError(RuntimeError):
    """The server answered ``{"ok": false}`` (or not at all).

    ``code`` is the v1 error code when the server sent one (``None``
    for transport failures and legacy string errors).
    """

    def __init__(self, message: str, code: str | None = None) -> None:
        super().__init__(message)
        self.code = code


class UnknownOpError(ServiceError):
    """v1 code ``unknown_op``: the server does not know this verb."""


class UnknownGraphError(ServiceError):
    """v1 code ``unknown_graph``: no graph registered under the name."""


class BadParamsError(ServiceError):
    """v1 code ``bad_params``: a parameter failed validation (raised
    client-side too, before the request is sent)."""


class OverloadedError(ServiceError):
    """v1 code ``overloaded``: the artifact's queue is full — back off
    and retry."""


class DrainingError(ServiceError):
    """v1 code ``draining``: the front end is flushing in-flight work
    before a graceful shutdown — reconnect (a rolling restart brings a
    fresh listener up on the same address) and retry."""


class ConnectionLostError(ServiceError):
    """The server closed the connection mid-request (worker restart,
    listener drop); the client's socket has been torn down."""


_CODE_EXCEPTIONS: dict[str, type[ServiceError]] = {
    "unknown_op": UnknownOpError,
    "unknown_graph": UnknownGraphError,
    "bad_params": BadParamsError,
    "overloaded": OverloadedError,
    "draining": DrainingError,
}

_RETRYABLE = (DrainingError, ConnectionLostError, ConnectionError)
"""What one bounded retry covers: an explicit drain notice, a dropped
line, or a socket-level reset/refusal while the listener restarts."""


def _raise_for_error(response: dict) -> None:
    """Map a failure envelope to the matching typed exception.

    v1 servers send ``error`` as ``{"code", "message", "op"}``; pre-v1
    servers sent a plain string.  Both are accepted (the string form
    for one release), unknown codes degrade to :class:`ServiceError`.
    """
    error = response.get("error")
    if isinstance(error, dict):
        code = error.get("code")
        message = str(error.get("message", "unspecified server error"))
        raise _CODE_EXCEPTIONS.get(code, ServiceError)(message, code)
    raise ServiceError(
        str(error) if error else "unspecified server error"
    )


def _check_int(name: str, value, minimum: int | None = None) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise BadParamsError(f"{name} must be an integer", "bad_params")
    if minimum is not None and value < minimum:
        raise BadParamsError(
            f"{name} must be >= {minimum}", "bad_params"
        )
    return value


def _check_vertices(name: str, value) -> list[int]:
    if not isinstance(value, (list, tuple)):
        raise BadParamsError(
            f"{name} must be a list of vertex ids", "bad_params"
        )
    for v in value:
        if isinstance(v, bool) or not isinstance(v, int) or v < 0:
            raise BadParamsError(
                f"{name} must contain non-negative integers",
                "bad_params",
            )
    return list(value)


def _check_str(name: str, value) -> str:
    if not isinstance(value, str) or not value:
        raise BadParamsError(
            f"{name} must be a non-empty string", "bad_params"
        )
    return value


def _key_params(
    graph, model, theta, seed, layout
) -> dict[str, object]:
    """Validate + assemble the artifact-key fields every query verb
    shares; ``None`` fields are omitted (server defaults apply)."""
    params: dict[str, object] = {}
    if graph is not None:
        params["graph"] = _check_str("graph", graph)
    if model is not None:
        params["model"] = _check_str("model", model)
    if theta is not None:
        params["theta"] = _check_int("theta", theta, minimum=1)
    if seed is not None:
        params["seed"] = _check_int("seed", seed)
    if layout is not None:
        params["layout"] = _check_str("layout", layout)
    return params


class ServiceClient:
    """One connection to a :class:`~repro.service.server.ServiceServer`.

    Usable as a context manager; the connection is opened lazily on
    the first request and survives any number of them.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        timeout: float = 60.0,
        retry: bool = True,
        retry_delay: float = 0.05,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retry = retry
        """Retry :meth:`call` exactly once — idempotent ops only — on
        a connection reset or a ``draining`` reply, so rolling drains
        and worker restarts don't surface as raw socket errors."""
        self.retry_delay = retry_delay
        self._sock: socket.socket | None = None
        self._reader = None

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    def connect(self) -> None:
        if self._sock is not None:
            return
        sock = socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        )
        self._sock = sock
        self._reader = sock.makefile("rb")

    def close(self) -> None:
        if self._sock is None:
            return
        try:
            self._reader.close()
            self._sock.close()
        except OSError:  # pragma: no cover - best-effort teardown
            pass
        self._sock = None
        self._reader = None

    def __enter__(self) -> "ServiceClient":
        self.connect()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # requests
    # ------------------------------------------------------------------
    def request(self, op: str, **params) -> dict:
        """Send one request; return the full response envelope."""
        self.connect()
        payload = {"op": op}
        payload.update(
            (k, v) for k, v in params.items() if v is not None
        )
        self._sock.sendall(
            json.dumps(payload, separators=(",", ":")).encode() + b"\n"
        )
        line = self._reader.readline()
        if not line:
            self.close()
            raise ConnectionLostError(
                f"server at {self.host}:{self.port} closed the connection"
            )
        return json.loads(line)

    def call(self, op: str, **params):
        """Send one request; return its ``result`` or raise the typed
        exception matching the server's error code.

        When :attr:`retry` is set (the default) and ``op`` is in
        :data:`IDEMPOTENT_OPS`, a connection reset or a ``draining``
        reply is retried exactly once against the same address after
        :attr:`retry_delay` seconds on a fresh connection — the window
        a rolling drain or a crashed-worker restart needs.  The retry
        is bounded at one: persistent failure still raises."""
        try:
            response = self.request(op, **params)
            if not response.get("ok"):
                _raise_for_error(response)
        except _RETRYABLE:
            if not (self.retry and op in IDEMPOTENT_OPS):
                raise
            self.close()
            time.sleep(self.retry_delay)
            response = self.request(op, **params)
            if not response.get("ok"):
                _raise_for_error(response)
        return response.get("result")

    # ------------------------------------------------------------------
    # convenience verbs
    # ------------------------------------------------------------------
    def ping(self) -> bool:
        return self.call("ping") == "pong"

    def graphs(self) -> list[dict]:
        return self.call("graphs")

    def stats(self) -> dict:
        return self.call("stats")

    def metrics(self) -> str:
        """Prometheus text exposition of the server's registry."""
        return self.call("metrics")

    def profile(
        self,
        action: str = "status",
        *,
        hz: float | None = None,
        limit: int | None = None,
        **extra,
    ) -> dict:
        """Drive the server's sampling profiler.

        ``action`` is ``start`` (optionally with ``hz``), ``stop``,
        ``status``, or ``dump`` — which returns the sampler stats plus
        the flamegraph-ready collapsed-stack text (``limit`` keeps only
        the hottest stacks).
        """
        if action not in ("start", "stop", "dump", "status"):
            raise BadParamsError(
                "action must be one of start, stop, dump, status",
                "bad_params",
            )
        params: dict[str, object] = {"action": action}
        if hz is not None:
            if isinstance(hz, bool) or not isinstance(hz, (int, float)):
                raise BadParamsError("hz must be a number", "bad_params")
            params["hz"] = hz
        if limit is not None:
            params["limit"] = _check_int("limit", limit, minimum=1)
        return self.call("profile", **params, **extra)

    def warm(
        self,
        *,
        graph: str | None = None,
        model: str | None = None,
        theta: int | None = None,
        seed: int | None = None,
        layout: str | None = None,
        seeds: Sequence[int] | None = None,
        sketch: bool | None = None,
        **extra,
    ) -> dict:
        """Build (or touch) the artifact; optionally pre-build its
        sketch view for ``seeds``.  All parameters are keyword-only
        and validated client-side."""
        params = _key_params(graph, model, theta, seed, layout)
        if seeds is not None:
            params["seeds"] = _check_vertices("seeds", seeds)
        if sketch is not None:
            params["sketch"] = bool(sketch)
        return self.call("warm", **params, **extra)

    def spread(
        self,
        *,
        graph: str | None = None,
        model: str | None = None,
        theta: int | None = None,
        seed: int | None = None,
        layout: str | None = None,
        seeds: Sequence[int] | None = None,
        blocked: Sequence[int] | None = None,
        num_seeds: int | None = None,
        **extra,
    ) -> dict:
        """Expected-spread estimate under ``blocked``.  All parameters
        are keyword-only and validated client-side."""
        params = _key_params(graph, model, theta, seed, layout)
        if seeds is not None:
            params["seeds"] = _check_vertices("seeds", seeds)
        if blocked is not None:
            params["blocked"] = _check_vertices("blocked", blocked)
        if num_seeds is not None:
            params["num_seeds"] = _check_int(
                "num_seeds", num_seeds, minimum=1
            )
        return self.call("spread", **params, **extra)

    def block(
        self,
        *,
        graph: str | None = None,
        model: str | None = None,
        theta: int | None = None,
        seed: int | None = None,
        layout: str | None = None,
        seeds: Sequence[int] | None = None,
        budget: int | None = None,
        algorithm: str | None = None,
        rng: int | None = None,
        num_seeds: int | None = None,
        **extra,
    ) -> dict:
        """Select blockers against the warm sketch index.  All
        parameters are keyword-only and validated client-side."""
        params = _key_params(graph, model, theta, seed, layout)
        if seeds is not None:
            params["seeds"] = _check_vertices("seeds", seeds)
        if budget is not None:
            params["budget"] = _check_int("budget", budget, minimum=1)
        if algorithm is not None:
            params["algorithm"] = _check_str("algorithm", algorithm)
        if rng is not None:
            params["rng"] = _check_int("rng", rng)
        if num_seeds is not None:
            params["num_seeds"] = _check_int(
                "num_seeds", num_seeds, minimum=1
            )
        return self.call("block", **params, **extra)

    def update(
        self,
        *,
        graph: str | None = None,
        model: str | None = None,
        theta: int | None = None,
        seed: int | None = None,
        layout: str | None = None,
        inserts: Sequence[Sequence] | None = None,
        deletes: Sequence[Sequence] | None = None,
        reweights: Sequence[Sequence] | None = None,
        seq: int | None = None,
        **extra,
    ) -> dict:
        """Apply one batched graph delta to the keyed warm artifact.

        ``inserts``/``reweights`` are ``(u, v, p)`` triples,
        ``deletes`` are ``(u, v)`` pairs.  ``seq`` is a caller-chosen
        monotone sequence number: the server applies each ``seq`` at
        most once and acknowledges duplicates with ``applied: false``,
        so an explicit resend after a dropped connection is safe.
        ``update`` is *not* in :data:`IDEMPOTENT_OPS` — the client
        never resends it automatically.
        """
        params = _key_params(graph, model, theta, seed, layout)
        for name, edits, width in (
            ("inserts", inserts, 3),
            ("deletes", deletes, 2),
            ("reweights", reweights, 3),
        ):
            if edits is None:
                continue
            if not isinstance(edits, (list, tuple)):
                raise BadParamsError(
                    f"{name} must be a list of edge edits", "bad_params"
                )
            checked = []
            for edit in edits:
                if not isinstance(edit, (list, tuple)) or (
                    len(edit) != width
                ):
                    raise BadParamsError(
                        f"{name} entries must have {width} fields",
                        "bad_params",
                    )
                checked.append(list(edit))
            params[name] = checked
        if not any(
            k in params for k in ("inserts", "deletes", "reweights")
        ):
            raise BadParamsError(
                "update needs at least one of inserts, deletes, "
                "reweights",
                "bad_params",
            )
        if seq is not None:
            params["seq"] = _check_int("seq", seq, minimum=1)
        return self.call("update", **params, **extra)

    def shutdown(self) -> None:
        """Ask the server to exit; tolerates the connection dropping."""
        try:
            self.call("shutdown")
        except (ServiceError, OSError):  # pragma: no cover - racy close
            pass
        finally:
            self.close()

    def wait_until_ready(self, deadline: float = 10.0) -> bool:
        """Poll ``ping`` until the server answers or ``deadline`` (s)
        passes — for scripts that just forked a ``repro serve``."""
        end = time.monotonic() + deadline
        while time.monotonic() < end:
            try:
                if self.ping():
                    return True
            except (OSError, ServiceError, json.JSONDecodeError):
                self.close()
                time.sleep(0.05)
        return False
