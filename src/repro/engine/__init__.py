"""repro.engine — the spread-evaluation engine.

The paper's contribution is making the spread oracle cheap enough for
greedy blocking at scale; this subsystem is that oracle's production
form.  Four pieces:

:mod:`repro.engine.kernels`
    Vectorized batch simulation of independent cascades (one numpy
    coin draw per BFS level of a whole batch).
:mod:`repro.engine.pool`
    Persistent, optionally disk-backed (mmapped) live-edge sample pool
    with hit/miss stats — the paper's sample-reuse trick generalised
    across queries and processes.
:mod:`repro.engine.parallel`
    Worker-pool executor with deterministic per-worker RNG streams,
    plus the shared ship-the-CSR-once pool infrastructure
    (:func:`make_worker_pool`) other parallel components reuse.
:mod:`repro.engine.treebuild`
    Batched, array-native construction of per-sample dominator trees
    straight from the pooled sample arrays — through the compiled
    batched kernel (:mod:`repro.native`) when the host can build it,
    serial Python or worker fan-out otherwise, bit-identical every
    way.
:mod:`repro.engine.sketch`
    The dominator-tree sketch index — the paper's Algorithm 2
    estimator as a persistent, incrementally-rebased backend with O(1)
    marginal gains; views default to the pooled-arena layout with an
    inverted membership index (vertex -> samples postings) for
    vectorized rebases.
:mod:`repro.engine.evaluator`
    The :class:`SpreadEvaluator` protocol, the backend implementations
    and the :func:`make_evaluator` factory; the scalar
    :class:`~repro.spread.MonteCarloEngine` is the reference backend.

Algorithms and the benchmark harness accept any
:class:`SpreadEvaluator` by dependency injection; see
``baseline_greedy(..., evaluator=...)`` and
``repro.bench.evaluate_spread(..., evaluator=...)``.
"""

from .evaluator import (
    BACKENDS,
    build_evaluator,
    make_evaluator,
    PooledEvaluator,
    ScalarEvaluator,
    SpreadEvaluator,
    VectorizedEvaluator,
)
from .spec import EngineSpec, MODELS
from .kernels import (
    batch_activation_counts,
    batch_cascades,
    batch_spread,
    postings_csr,
    ragged_arange,
    reach_counts_from_alive,
)
from .parallel import default_workers, ParallelEvaluator, split_rounds
from .pool import PoolStats, SampleBatch, SamplePool
from .sketch import LAYOUTS, SketchIndex, SketchStats
from .treebuild import build_sample_tree, build_trees, TreeBuilder

__all__ = [
    "SketchIndex",
    "SketchStats",
    "LAYOUTS",
    "postings_csr",
    "SpreadEvaluator",
    "ScalarEvaluator",
    "VectorizedEvaluator",
    "ParallelEvaluator",
    "PooledEvaluator",
    "BACKENDS",
    "MODELS",
    "EngineSpec",
    "make_evaluator",
    "build_evaluator",
    "batch_cascades",
    "batch_spread",
    "batch_activation_counts",
    "reach_counts_from_alive",
    "ragged_arange",
    "SamplePool",
    "SampleBatch",
    "PoolStats",
    "default_workers",
    "split_rounds",
    "build_sample_tree",
    "build_trees",
    "TreeBuilder",
]
