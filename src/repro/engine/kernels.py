"""Vectorized batch kernels for independent-cascade simulation.

The scalar :class:`~repro.spread.MonteCarloEngine` walks one cascade at
a time in a Python stack loop, paying interpreter overhead per touched
edge.  The kernels here simulate a whole *batch* of ``B`` independent
cascades simultaneously as array operations:

* activation state is a ``(B, n)`` boolean matrix (flat-indexed for
  O(1) membership tests), while the frontier is kept **sparse** as
  parallel ``(cascade, vertex)`` arrays — cascades reach a few percent
  of the graph under the paper's TR/WC models, so per-level work must
  scale with the frontier, not with ``B * n``;
* each synchronous BFS level gathers the out-edges of every frontier
  pair with a ragged-``arange`` gather, draws **all** edge coins of the
  level in one numpy call, and activates the successful targets with a
  single flat scatter;
* a vertex enters the frontier at most once per cascade, so every edge
  is flipped at most once per cascade — exactly the IC semantics of the
  scalar engine (Definition 2 of the paper).

Python-level work is a constant number of numpy calls per BFS level of
the *batch*, independent of how many cascades or edges that level
touches.

The same frontier machinery also evaluates *pre-drawn* live-edge
samples (Definition 4): :func:`reach_counts_from_alive` replaces the
coin flips with lookups into an aliveness matrix, which is how the
:class:`~repro.engine.pool.SamplePool` reuses one set of samples across
many blocked-set queries.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from ..graph import CSRGraph, DiGraph
from ..rng import ensure_rng, RngLike

__all__ = [
    "ragged_arange",
    "auto_batch_size",
    "batch_cascades",
    "batch_spread",
    "batch_activation_counts",
    "reach_counts_from_alive",
    "sample_csr",
    "postings_csr",
]

# soft cap on the (batch, n) activation matrix: ~16M cells = 16 MB of
# bools, which keeps per-batch allocation cheap on small machines while
# letting large batches amortise the per-level numpy call overhead.
_STATE_CELL_BUDGET = 16_000_000


def ragged_arange(counts: np.ndarray) -> np.ndarray:
    """Concatenated ``arange(c)`` for every ``c`` in ``counts``.

    ``ragged_arange([2, 0, 3]) == [0, 1, 0, 1, 2]`` — the standard
    trick for gathering variable-length CSR slices without a Python
    loop.
    """
    counts = np.asarray(counts, dtype=np.int64)
    total = int(counts.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64)
    starts = np.zeros(counts.shape[0], dtype=np.int64)
    np.cumsum(counts[:-1], out=starts[1:])
    return np.arange(total, dtype=np.int64) - np.repeat(starts, counts)


def auto_batch_size(n: int, requested: int | None = None) -> int:
    """Batch size bounded so the activation matrix stays affordable."""
    cap = max(1, _STATE_CELL_BUDGET // max(n, 1))
    if requested is None:
        return min(1024, cap)
    if requested <= 0:
        raise ValueError("batch_size must be positive")
    return min(requested, cap)


def _probs32(csr: CSRGraph) -> np.ndarray:
    """float32 edge probabilities, cached on the CSR snapshot.

    Coin flips compare a float32 uniform against these: the rounding
    perturbs each probability by at most 2**-24, orders of magnitude
    below the Monte-Carlo estimator's statistical error, and halves
    the cost of the hottest numpy call.
    """
    cached = getattr(csr, "_probs32", None)
    if cached is None:
        cached = np.minimum(csr.probs, 1.0).astype(np.float32)
        csr._probs32 = cached
    return cached


def _coin_survive(gen: np.random.Generator, probs32: np.ndarray):
    """``make_survive`` factory flipping fresh coins for every touched
    edge — the one definition of the Monte-Carlo coin semantics shared
    by every simulating kernel."""

    def make_survive(_pos: int, _b: int):
        def survive(erows: np.ndarray, eids: np.ndarray) -> np.ndarray:
            return gen.random(eids.shape[0], dtype=np.float32) \
                < probs32[eids]

        return survive

    return make_survive


def _blocked_mask(
    n: int, blocked: Iterable[int], seeds: Sequence[int]
) -> np.ndarray:
    mask = np.zeros(n, dtype=bool)
    blocked_list = list(blocked)
    if blocked_list:
        mask[np.asarray(blocked_list, dtype=np.int64)] = True
    for s in seeds:
        if mask[s]:
            raise ValueError(f"seed {s} cannot be blocked")
    return mask


def _frontier_step(
    csr: CSRGraph,
    outdeg: np.ndarray,
    active_flat: np.ndarray,
    rows: np.ndarray,
    verts: np.ndarray,
    blocked_mask: np.ndarray,
    has_blocked: bool,
    survive,
) -> tuple[np.ndarray, np.ndarray] | None:
    """One synchronous BFS level for every cascade in the batch.

    ``(rows, verts)`` are the sparse frontier pairs; ``survive(erows,
    eids)`` decides which of the touched edges are live this level.
    Returns the next frontier pairs, or ``None`` once exhausted.
    """
    counts = outdeg[verts]
    live_src = counts > 0
    if not live_src.all():
        rows, verts, counts = rows[live_src], verts[live_src], counts[live_src]
    if rows.size == 0:
        return None
    eids = np.repeat(csr.indptr[verts], counts) + ragged_arange(counts)
    erows = np.repeat(rows, counts)
    # filter on the coin flips first: under TR/WC most edges fail, so
    # every later gather runs on a small fraction of the level's edges
    live = survive(erows, eids)
    eids = eids[live]
    if eids.size == 0:
        return None
    erows = erows[live]
    targets = csr.indices[eids]
    n = np.int64(blocked_mask.shape[0])
    flat = erows * n + targets
    ok = ~active_flat[flat]
    if has_blocked:
        ok &= ~blocked_mask[targets]
    flat = flat[ok]
    if flat.size == 0:
        return None
    # flat (cascade, vertex) scatter; sorting dedups within-level
    # multi-activations (two frontier vertices reaching the same target)
    flat.sort()
    if flat.size > 1:
        keep = np.empty(flat.size, dtype=bool)
        keep[0] = True
        np.not_equal(flat[1:], flat[:-1], out=keep[1:])
        flat = flat[keep]
    active_flat[flat] = True
    new_rows = flat // n
    return new_rows, flat - new_rows * n


def _run_batches(
    csr: CSRGraph,
    seeds: Sequence[int],
    rounds: int,
    blocked: Iterable[int],
    batch_size: int | None,
    make_survive,
    per_round: np.ndarray | None,
    vertex_counts: np.ndarray | None,
) -> None:
    """Shared driver: run ``rounds`` cascades in batches, accumulating
    per-round active counts and/or per-vertex activation counts."""
    if rounds <= 0:
        raise ValueError("rounds must be positive")
    n = csr.n
    seed_list = list(dict.fromkeys(seeds))
    blocked_mask = _blocked_mask(n, blocked, seed_list)
    has_blocked = bool(blocked_mask.any())
    seed_arr = np.asarray(seed_list, dtype=np.int64)
    outdeg = csr.out_degrees()
    size = auto_batch_size(n, batch_size)
    pos = 0
    while pos < rounds:
        b = min(size, rounds - pos)
        active_flat = np.zeros(b * n, dtype=bool)
        round_counts = np.full(b, seed_arr.size, dtype=np.int64)
        if vertex_counts is not None and seed_arr.size:
            vertex_counts[seed_arr] += b
        survive = make_survive(pos, b)
        if seed_arr.size:
            rows = np.repeat(np.arange(b, dtype=np.int64), seed_arr.size)
            verts = np.tile(seed_arr, b)
            active_flat[rows * n + verts] = True
            frontier = (rows, verts)
        else:
            frontier = None
        while frontier is not None:
            frontier = _frontier_step(
                csr, outdeg, active_flat, frontier[0], frontier[1],
                blocked_mask, has_blocked, survive,
            )
            if frontier is not None:
                round_counts += np.bincount(frontier[0], minlength=b)
                if vertex_counts is not None:
                    vertex_counts += np.bincount(frontier[1], minlength=n)
        if per_round is not None:
            per_round[pos: pos + b] = round_counts
        pos += b


def batch_cascades(
    graph: DiGraph | CSRGraph,
    seeds: Sequence[int],
    rounds: int,
    rng: RngLike = None,
    blocked: Iterable[int] = (),
    batch_size: int | None = None,
) -> np.ndarray:
    """Active-vertex count of ``rounds`` independent IC cascades.

    Vectorized equivalent of calling
    :meth:`MonteCarloEngine.simulate` ``rounds`` times (different RNG
    stream, same distribution).  Returns ``int64[rounds]``.
    """
    csr = graph if isinstance(graph, CSRGraph) else CSRGraph(graph)
    gen = ensure_rng(rng)
    out = np.empty(rounds if rounds > 0 else 0, dtype=np.int64)
    _run_batches(csr, seeds, rounds, blocked, batch_size,
                 _coin_survive(gen, _probs32(csr)), out, None)
    return out


def batch_spread(
    graph: DiGraph | CSRGraph,
    seeds: Sequence[int],
    rounds: int,
    rng: RngLike = None,
    blocked: Iterable[int] = (),
    batch_size: int | None = None,
) -> float:
    """Monte-Carlo estimate of ``E(S, G[V \\ blocked])``, vectorized."""
    counts = batch_cascades(graph, seeds, rounds, rng, blocked, batch_size)
    return float(counts.sum()) / rounds


def batch_activation_counts(
    graph: DiGraph | CSRGraph,
    seeds: Sequence[int],
    rounds: int,
    rng: RngLike = None,
    blocked: Iterable[int] = (),
    batch_size: int | None = None,
) -> np.ndarray:
    """Per-vertex activation counts over ``rounds`` cascades.

    ``counts / rounds`` estimates the activation probability
    ``P_G(x, S)`` of Definition 3; vectorized counterpart of
    :meth:`MonteCarloEngine.activation_frequencies`.
    """
    csr = graph if isinstance(graph, CSRGraph) else CSRGraph(graph)
    gen = ensure_rng(rng)
    counts = np.zeros(csr.n, dtype=np.int64)
    _run_batches(csr, seeds, rounds, blocked, batch_size,
                 _coin_survive(gen, _probs32(csr)), None, counts)
    return counts


def sample_csr(
    csr: CSRGraph,
    positions: np.ndarray,
    root_targets: Sequence[int],
    blocked: Iterable[int] = (),
) -> tuple[np.ndarray, np.ndarray]:
    """CSR arrays of one live-edge sample plus a virtual super-source.

    ``positions`` are the sample's surviving edge positions (ascending,
    as stored by :class:`~repro.engine.pool.SampleBatch`), so the edge
    list is already grouped by source in CSR order and the whole
    construction is a handful of numpy calls — no Python adjacency
    mapping is ever materialised.  Row ``n`` is the virtual root with
    deterministic edges to ``root_targets`` (the seed set); edges
    incident to a ``blocked`` vertex are dropped, which leaves blocked
    vertices as empty, unreachable rows.

    Returns ``(indptr, indices)`` with ``n + 2`` int64 row pointers,
    ready for :func:`~repro.dominator.dominator_tree_csr`.
    """
    n = csr.n
    src = csr.src[positions]
    dst = csr.indices[positions]
    targets = np.asarray(list(root_targets), dtype=np.int64)
    blocked_list = list(blocked)
    if blocked_list:
        mask = np.zeros(n + 1, dtype=bool)
        mask[np.asarray(blocked_list, dtype=np.int64)] = True
        keep = ~(mask[src] | mask[dst])
        src = src[keep]
        dst = dst[keep]
        # root edges are subject to the same filter: a blocked target
        # must not stay reachable through the virtual source
        targets = targets[~mask[targets]]
    counts = np.bincount(src, minlength=n + 1)
    counts[n] = targets.shape[0]
    indptr = np.zeros(n + 2, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    indices = np.concatenate([dst, targets])
    return indptr, indices


def postings_csr(
    sample_ids: np.ndarray,
    vertices: np.ndarray,
    n: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Inverted membership index: vertex -> samples containing it.

    ``(sample_ids[i], vertices[i])`` pairs state "sample ``t`` reaches
    vertex ``v``"; ``sample_ids`` must be non-decreasing (the natural
    order when pairs are emitted sample by sample).  Returns
    ``(indptr, samples)`` CSR arrays over the ``n`` vertices: the
    samples reaching ``v`` are ``samples[indptr[v]:indptr[v + 1]]``,
    **ascending** — a stable counting sort by vertex preserves the
    sample order within each row, which is what lets consumers binary
    search rows (and concatenations of rows) by ``v * theta + t``
    keys.

    This is the construction kernel of the sketch index's
    inverted membership index (the arena-backed query path): built
    once per view from the base trees, then patched in place through
    an aliveness mask as rebases move the blocker set.
    """
    if sample_ids.shape != vertices.shape:
        raise ValueError("sample_ids and vertices must align")
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.bincount(vertices, minlength=n), out=indptr[1:])
    order = np.argsort(vertices, kind="stable")
    return indptr, sample_ids[order]


def reach_counts_from_alive(
    csr: CSRGraph,
    seeds: Sequence[int],
    alive: np.ndarray,
    blocked: Iterable[int] = (),
) -> np.ndarray:
    """Reachable-set sizes of ``seeds`` in pre-drawn live-edge samples.

    ``alive`` is a boolean ``(B, m)`` matrix: row ``t`` marks the edges
    surviving in sample ``t``.  Blocking is applied at traversal time,
    which is what lets one sample set serve every blocked-set query
    (the paper's sample-reuse trick behind AdvancedGreedy).  Returns
    ``int64[B]`` active counts, seeds included.
    """
    if alive.ndim != 2 or alive.shape[1] != csr.m:
        raise ValueError(
            f"alive matrix must be (B, m={csr.m}), got {alive.shape}"
        )
    b = alive.shape[0]
    out = np.empty(b, dtype=np.int64)

    def make_survive(pos: int, _b: int):
        def survive(erows: np.ndarray, eids: np.ndarray) -> np.ndarray:
            return alive[pos + erows, eids]

        return survive

    _run_batches(csr, seeds, b, blocked, b, make_survive, out, None)
    return out
