"""Dominator-tree sketch index: the paper's estimator as an engine.

The Monte-Carlo backends answer every blocked-set query by re-walking
cascades from scratch; the paper's own estimator (Section V-B/C) shows
that is wasted work.  Draw ``theta`` live-edge samples **once**, build
the dominator tree of each sample from the (virtual) source, and every
query becomes tree arithmetic:

* the expected spread of the current blocker set is the mean reachable
  count, i.e. the mean dominator-tree size (Lemma 1);
* the marginal effect of additionally blocking ``v`` is the mean
  dominator-subtree size of ``v`` — by Theorem 6 the subtree of ``v``
  is *exactly* the set of vertices cut off when ``v`` is removed from
  that sample, so per sampled world the answer is exact, and Theorem 5
  bounds the sampling error of the mean
  (:func:`repro.sampling.required_samples`).

:class:`SketchIndex` packages this as a persistent, stateful index
behind the :class:`~repro.engine.evaluator.SpreadEvaluator` protocol:

* samples come from a :class:`~repro.engine.pool.SamplePool`, so they
  are chunk-seeded (bit-identical regardless of growth history) and
  shareable with the pooled Monte-Carlo backend and across processes;
* trees are built **array-native and batched**
  (:mod:`repro.engine.treebuild`) — via the compiled batched kernel
  (:mod:`repro.native`) when the host can build it, the pure-Python
  path otherwise, bit-identical either way;
* trees are cached per sample and **rebased** incrementally: moving
  from blocker set ``B`` to ``B'`` re-derives only the samples in
  which some added blocker is currently reachable or some removed
  blocker could become reachable — untouched samples keep their trees;
* aggregated subtree sizes are maintained as one ``float64[n + 1]``
  array, so :meth:`SketchIndex.marginal_gain` is an O(1) lookup after
  the rebase and a whole greedy round of candidate gains costs one
  array read (Algorithm 2's "all candidates at once" property).

Two view layouts implement that contract (``SketchIndex(layout=...)``,
default ``"arena"``):

``arena``
    Per-sample trees live in one pooled **arena** — flat
    ``order``/``sizes`` arrays plus per-sample ``(start, length)``
    slots (CSR-of-trees), grown by amortised doubling when a rebuilt
    tree outgrows its slot.  Reachability is an **inverted membership
    index**: a CSR postings structure mapping vertex -> samples whose
    *base* (unblocked) tree reaches it
    (:func:`repro.engine.kernels.postings_csr`), built once per view,
    with a per-posting aliveness bit tracking the *current* blocker
    set.  A rebase unions the postings rows of the moved blockers to
    find the touched samples (O(affected postings) — no Python loop
    over ``theta``), applies every touched sample's -/+ subtree-size
    delta in one batched ``np.bincount`` scatter, patches the
    aliveness bits with one ``searchsorted`` over ``v * theta + t``
    keys, and writes the rebuilt trees back into the arena in one
    flat scatter.
``legacy``
    The pre-arena per-sample layout — Python lists of ``(order,
    sizes)`` arrays, one ``frozenset`` reachable set per sample, a
    Python touch scan over all ``theta`` samples — kept verbatim as
    the semantic reference: the parity tests and
    ``benchmarks/bench_sketch_query.py`` pin the arena layout
    bit-identical to it (same spreads, gains and blocker selections).

Multi-seed queries use a virtual super-source (id ``n``) with
deterministic edges to every seed — joint reachability on the *same*
live-edge draw, which is Lemma 1's estimator without the noisy-or
rebuild of :func:`~repro.core.problem.unify_seeds`.

RIS sketches (:mod:`repro.imax.ris`) do not transfer to blockers —
they sample reverse-reachable sets for *seed placement*; blocking
changes the graph itself, which is why this index re-derives touched
trees instead of reweighting sketches.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

import numpy as np

from ..graph import CSRGraph, DiGraph, GraphDelta
from ..obs import global_registry, span, track
from ..rng import RngLike
from .kernels import postings_csr, ragged_arange
from .pool import PoolDeltaReport, SampleBatch, SamplePool
from .treebuild import TreeBuilder

__all__ = ["SketchIndex", "SketchStats", "LAYOUTS"]

# retained seed-set/theta views (each holds theta cached trees); greedy
# loops use one view, CLI runs use at most one per (selection, judge)
_MAX_VIEWS = 4

LAYOUTS: tuple[str, ...] = ("arena", "legacy")

# on-disk arena-view format; bump on any layout/semantic change so
# stale artifacts fall back to a cold build instead of misloading
_SKETCH_FORMAT = 1

# persisted array fields of an arena view: file tag -> attribute.
# Everything a query or rebase reads is here, so a rehydrated view
# answers without building a single tree.
_ARTIFACT_FIELDS: tuple[tuple[str, str], ...] = (
    ("lengths", "_lengths"),
    ("starts", "_starts"),
    ("order", "_order_arena"),
    ("sizes", "_sizes_arena"),
    ("delta", "_delta_sum"),
    ("pindptr", "_post_indptr"),
    ("psamples", "_post_samples"),
    ("palive", "_post_alive"),
    ("pkey", "_post_key"),
    ("sindptr", "_samp_indptr"),
    ("spidx", "_samp_pidx"),
)


@dataclass
class SketchStats:
    """Observability counters for a :class:`SketchIndex`."""

    queries: int = 0
    """Spread / marginal-gain queries answered."""
    rebases: int = 0
    """Blocker-set transitions that re-derived at least one tree."""
    trees_built: int = 0
    """Dominator trees constructed (initial builds + rebases)."""
    samples_skipped: int = 0
    """Samples left untouched by a rebase (the incremental win)."""
    tree_bytes: int = 0
    """Resident bytes of the cached per-sample tree state (a live
    gauge, not a counter): grows as views are built, shrinks as views
    are evicted or the index is closed.  For arena views this is the
    arena plus the inverted membership index (``arena_bytes`` +
    ``postings_bytes``); for legacy views it is the per-tree array
    sum.  The gauge is re-synced only after a successful write-back,
    so a builder failure mid-rebase never leaves it stale.  The
    serving layer adds this to its artifact byte accounting so LRU
    byte bounds reflect the tree cache, not just the sample pools."""
    arena_bytes: int = 0
    """Resident bytes of the pooled tree arenas (flat order/sizes
    arrays at capacity, plus the per-sample slot tables).  Zero for
    legacy-layout views."""
    postings_bytes: int = 0
    """Resident bytes of the inverted membership indexes (postings
    CSR, aliveness bits, search keys, by-sample posting table).  Zero
    for legacy-layout views."""
    rehydrations: int = 0
    """Arena views attached memory-mapped from a persisted artifact
    instead of cold-built — a rehydrate skips sampling *and* every
    tree build."""
    persists: int = 0
    """Arena views serialized to the artifact cache directory."""
    deltas: int = 0
    """Graph deltas applied through :meth:`SketchIndex.apply_delta` —
    each one patched the pool and rebased the cached views in place
    instead of cold-rebuilding the index."""
    delta_trees_rebuilt: int = 0
    """Dominator trees rebuilt by graph-delta rebases (summed over
    views; the incremental cost actually paid)."""
    delta_samples_skipped: int = 0
    """Samples graph-delta rebases left untouched (summed over views;
    the incremental win)."""

    def __post_init__(self) -> None:
        # re-register into the shared metrics registry: attributes stay
        # the API (the service's byte accounting reads them directly);
        # repro.obs sums them across live instances at collection time
        # (repro_sketch_* gauges/counters)
        track("sketch", self)

    def as_dict(self) -> dict[str, int]:
        return {
            "queries": self.queries,
            "rebases": self.rebases,
            "trees_built": self.trees_built,
            "samples_skipped": self.samples_skipped,
            "tree_bytes": self.tree_bytes,
            "arena_bytes": self.arena_bytes,
            "postings_bytes": self.postings_bytes,
            "rehydrations": self.rehydrations,
            "persists": self.persists,
            "deltas": self.deltas,
            "delta_trees_rebuilt": self.delta_trees_rebuilt,
            "delta_samples_skipped": self.delta_samples_skipped,
        }


def _delta_metrics():
    """The explicit ``repro_delta_*`` instruments (get-or-create).

    Created lazily so importing this module never populates the global
    registry; the per-apply duration is already covered by the
    ``sketch.delta`` / ``pool.delta`` span histograms.
    """
    registry = global_registry()
    touched = registry.histogram(
        "repro_delta_touched_samples",
        "Pooled samples whose survived-edge set one graph delta "
        "changed (the trees a sketch must rebuild)",
        buckets=(0.0, 1.0, 10.0, 100.0, 1000.0, 10000.0, 100000.0),
    )
    rebuilt = registry.counter(
        "repro_delta_trees_rebuilt_total",
        "Dominator trees rebuilt by incremental graph-delta rebases",
    )
    return touched, rebuilt


def _delta_sources(delta: GraphDelta) -> list[int]:
    """Source vertices of every edge the delta names, sorted.

    A changed edge can only alter a sample's reachable set if its
    *source* is reachable in that sample before the delta (the first
    newly traversed delta edge must hang off the old reachable set;
    a removed edge only mattered if it was traversed) — so postings
    rows of these vertices bound the trees a delta can touch.
    """
    return sorted(
        {u for u, _, _ in delta.inserts}
        | {u for u, _ in delta.deletes}
        | {u for u, _, _ in delta.reweights}
    )


class _LegacySketchView:
    """Per-(seed set, theta) tree cache, pre-arena layout.

    Holds, for every sample, the dominator tree of the sample *under
    the currently committed blocker set* — as ``(order, sizes)`` flat
    arrays in Python lists plus a ``frozenset`` reachable set per
    sample used for touch tests — and the aggregated subtree-size
    array over all samples.  Kept byte-for-byte as the semantic
    reference the arena layout is benchmarked and parity-tested
    against.
    """

    def __init__(
        self,
        csr: CSRGraph,
        batch: SampleBatch,
        seeds: tuple[int, ...],
        stats: SketchStats,
        builder: TreeBuilder,
    ) -> None:
        self.csr = csr
        self.batch = batch
        self.seeds = seeds
        self.stats = stats
        self.builder = builder
        self.root = csr.n  # virtual super-source
        self.theta = batch.theta
        self.blocked: frozenset[int] = frozenset()
        self._orders: list[np.ndarray] = []
        self._sizes: list[np.ndarray] = []
        self._reachable: list[frozenset[int]] = []
        # vertices reachable with *no* blockers: the superset of what
        # any unblocking can expose, used for removed-blocker touch
        # tests
        self._base_reachable: list[frozenset[int]] = []
        self._delta_sum = np.zeros(csr.n + 1, dtype=np.float64)
        self._spread_sum = 0
        self._accounted_bytes = 0
        # the cold build: every sample's tree in one batched,
        # array-native pass
        for order, sizes in self._build(range(self.theta), self.blocked):
            self._orders.append(order)
            self._sizes.append(sizes)
            reachable = frozenset(order.tolist())
            self._reachable.append(reachable)
            self._base_reachable.append(reachable)
            self._apply(order, sizes, +1)
        self._sync_bytes()

    # ------------------------------------------------------------------
    # tree construction and aggregation
    # ------------------------------------------------------------------
    def _build(
        self, sample_indices, blocked: frozenset[int]
    ) -> list[tuple[np.ndarray, np.ndarray]]:
        trees = self.builder.build(
            self.batch, sample_indices, self.seeds, sorted(blocked)
        )
        self.stats.trees_built += len(trees)
        return trees

    def _live_bytes(self) -> int:
        return sum(
            order.nbytes + sizes.nbytes
            for order, sizes in zip(self._orders, self._sizes)
        )

    def _sync_bytes(self) -> None:
        # absolute re-sync after a *successful* write-back: the gauge
        # always reflects what is actually resident, so a builder
        # failure mid-rebase (which leaves the old trees in place)
        # cannot strand phantom bytes in the stats
        live = self._live_bytes()
        self.stats.tree_bytes += live - self._accounted_bytes
        self._accounted_bytes = live

    def drop(self) -> None:
        """Release the cached trees (view eviction / index close)."""
        self.stats.tree_bytes -= self._accounted_bytes
        self._accounted_bytes = 0
        self._orders.clear()
        self._sizes.clear()
        self._reachable.clear()
        self._base_reachable.clear()

    def _apply(self, order: np.ndarray, sizes: np.ndarray, sign: int) -> None:
        # order[0] is the virtual root; its "subtree" is the whole
        # sample and it is never a blocker candidate, so skip it
        self._spread_sum += sign * (order.shape[0] - 1)
        if order.shape[0] > 1:
            np.add.at(
                self._delta_sum,
                order[1:],
                sign * sizes[1:].astype(np.float64),
            )

    # ------------------------------------------------------------------
    # rebase: move the committed blocker set, touching few samples
    # ------------------------------------------------------------------
    def rebase(self, blocked: frozenset[int]) -> None:
        if blocked == self.blocked:
            return
        with span("sketch.rebase"):
            added = blocked - self.blocked
            removed = self.blocked - blocked
            touched = [
                t
                for t in range(self.theta)
                if any(v in self._reachable[t] for v in added)
                or any(v in self._base_reachable[t] for v in removed)
            ]
            for t, (order, sizes) in zip(
                touched, self._build(touched, blocked)
            ):
                self._apply(self._orders[t], self._sizes[t], -1)
                self._orders[t] = order
                self._sizes[t] = sizes
                self._reachable[t] = frozenset(order.tolist())
                self._apply(order, sizes, +1)
            self.blocked = blocked
            if touched:
                self.stats.rebases += 1
                self._sync_bytes()
            self.stats.samples_skipped += self.theta - len(touched)

    # ------------------------------------------------------------------
    # graph deltas: swap the graph under the view, rebuild few trees
    # ------------------------------------------------------------------
    def apply_delta(
        self,
        csr: CSRGraph,
        batch: SampleBatch,
        touched: np.ndarray,
        builder: TreeBuilder,
        delta: GraphDelta,
    ) -> int:
        """Move this view onto the post-delta graph and samples.

        Caller contract (:meth:`SketchIndex.apply_delta`): the view
        was parked at the unblocked base while the *old* pool state
        was live, and ``touched`` is the pool's exact changed-sample
        set for this view's theta prefix.  Narrowed further by the
        source-reachability test of :func:`_delta_sources`, then only
        the surviving samples' trees are rebuilt.  Returns how many.
        """
        sources = _delta_sources(delta)
        keep = [
            int(t)
            for t in touched
            if any(u in self._base_reachable[t] for u in sources)
        ]
        self.csr = csr
        self.batch = batch
        self.builder = builder
        if keep:
            for t, (order, sizes) in zip(
                keep, self._build(keep, frozenset())
            ):
                self._apply(self._orders[t], self._sizes[t], -1)
                self._orders[t] = order
                self._sizes[t] = sizes
                reachable = frozenset(order.tolist())
                self._reachable[t] = reachable
                self._base_reachable[t] = reachable
                self._apply(order, sizes, +1)
            self._sync_bytes()
        return len(keep)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def spread(self, blocked: frozenset[int]) -> float:
        self.rebase(blocked)
        self.stats.queries += 1
        return self._spread_sum / self.theta

    def gain(self, v: int, blocked: frozenset[int]) -> float:
        self.rebase(blocked)
        self.stats.queries += 1
        if v in blocked:
            return 0.0
        return float(self._delta_sum[v]) / self.theta

    def gains(self, blocked: frozenset[int]) -> np.ndarray:
        """Every vertex's marginal decrease at once (Algorithm 2)."""
        with span("sketch.gains"):
            self.rebase(blocked)
            self.stats.queries += 1
            return self._delta_sum[: self.csr.n] / self.theta


class _ArenaSketchView:
    """Per-(seed set, theta) tree cache, pooled-arena layout.

    All ``theta`` trees live in two flat int64 arenas (``order`` and
    ``sizes`` payloads) addressed by per-sample ``(start, length)``
    slots; reachability lives in an inverted membership index (vertex
    -> samples, CSR postings with an aliveness bit per posting).
    Every rebase step — touch detection, -/+ delta aggregation,
    postings patching, tree write-back — is a constant number of numpy
    calls over the touched slice, with no Python loop over samples.
    Answers are bit-identical to :class:`_LegacySketchView`.
    """

    def __init__(
        self,
        csr: CSRGraph,
        batch: SampleBatch,
        seeds: tuple[int, ...],
        stats: SketchStats,
        builder: TreeBuilder,
    ) -> None:
        self.csr = csr
        self.batch = batch
        self.seeds = seeds
        self.stats = stats
        self.builder = builder
        self.root = csr.n  # virtual super-source
        self.theta = batch.theta
        self.blocked: frozenset[int] = frozenset()
        self._writable = True
        n = csr.n
        self._delta_sum = np.zeros(n + 1, dtype=np.float64)
        self._accounted_arena = 0
        self._accounted_postings = 0

        # ---- cold build: one packed batch, written as the arena ----
        lengths, orders, sizes = builder.build_packed(
            batch, range(self.theta), seeds, ()
        )
        stats.trees_built += self.theta
        self._lengths = lengths.astype(np.int64, copy=True)
        starts = np.zeros(self.theta, dtype=np.int64)
        np.cumsum(self._lengths[:-1], out=starts[1:])
        self._starts = starts
        self._used = int(self._lengths.sum())
        self._order_arena = np.ascontiguousarray(orders, dtype=np.int64)
        self._sizes_arena = np.ascontiguousarray(sizes, dtype=np.int64)
        self._spread_sum = int(self._used - self.theta)

        # aggregate all subtree sizes minus each tree's root entry —
        # one bincount scatter (exact: all-integer float64 arithmetic,
        # so the ordering vs per-sample np.add.at scatters cancels)
        payload_mask = np.ones(self._used, dtype=bool)
        payload_mask[starts] = False
        verts = self._order_arena[payload_mask]
        if verts.shape[0]:
            self._delta_sum += np.bincount(
                verts,
                weights=self._sizes_arena[payload_mask].astype(
                    np.float64
                ),
                minlength=n + 1,
            )

        # ---- inverted membership index over the base trees ----
        sample_ids = np.repeat(
            np.arange(self.theta, dtype=np.int64), self._lengths - 1
        )
        self._post_indptr, self._post_samples = postings_csr(
            sample_ids, verts, n
        )
        self._post_alive = np.ones(self._post_samples.shape[0], dtype=bool)
        # keys v * theta + t are globally ascending (vertex-major rows,
        # samples ascending within a row): one searchsorted resolves
        # arbitrary (vertex, sample) pairs to posting indices
        self._post_key = (
            np.repeat(
                np.arange(n, dtype=np.int64), np.diff(self._post_indptr)
            )
            * self.theta
            + self._post_samples
        )
        # by-sample view of the same postings: row t lists the posting
        # indices of sample t's base-reachable vertices
        self._samp_indptr = np.zeros(self.theta + 1, dtype=np.int64)
        np.cumsum(
            np.bincount(self._post_samples, minlength=self.theta),
            out=self._samp_indptr[1:],
        )
        self._samp_pidx = np.argsort(self._post_samples, kind="stable")
        self._sync_bytes()

    # ------------------------------------------------------------------
    # persistence: .npy artifacts next to the sample pool's cache
    # ------------------------------------------------------------------
    def save(self, prefix: Path) -> bool:
        """Serialize this view's **base** state as mmap-able ``.npy``
        files under ``prefix`` (plus a ``.meta.json`` descriptor).

        Only the unrebased state is ever written (the cold build calls
        this before any query moves the blocker set), so every reader
        rehydrates the same bit-identical starting point.  Each file
        is written tmp-then-rename; the meta descriptor lands last and
        acts as the commit marker — a crash mid-save leaves no
        loadable artifact.  I/O failures are reported as ``False``
        (persistence is an optimisation, never a correctness gate).
        """
        if self.blocked:
            return False
        arrays = dict(self._artifact_arrays())
        try:
            prefix.parent.mkdir(parents=True, exist_ok=True)
            for tag, _ in _ARTIFACT_FIELDS:
                path = _artifact_file(prefix, tag)
                tmp = path.with_name(
                    path.name[: -len(".npy")] + ".tmp.npy"
                )
                np.save(tmp, np.asarray(arrays[tag]))
                tmp.replace(path)
            meta = {
                "format": _SKETCH_FORMAT,
                "n": int(self.csr.n),
                "theta": int(self.theta),
                "seeds": [int(s) for s in self.seeds],
                "used": int(self._used),
                "spread_sum": int(self._spread_sum),
            }
            meta_path = _artifact_file(prefix, "meta", suffix=".json")
            tmp = meta_path.with_name(meta_path.name + ".tmp")
            tmp.write_text(json.dumps(meta, separators=(",", ":")))
            tmp.replace(meta_path)
        except OSError:
            return False
        self.stats.persists += 1
        return True

    def _artifact_arrays(self):
        """``(tag, array)`` pairs in persisted form (arenas trimmed to
        ``used`` — a fresh cold build has no slack, and slack must not
        be persisted anyway)."""
        for tag, attr in _ARTIFACT_FIELDS:
            array = getattr(self, attr)
            if attr in ("_order_arena", "_sizes_arena"):
                array = array[: self._used]
            yield tag, array

    @classmethod
    def from_artifact(
        cls,
        csr: CSRGraph,
        batch: SampleBatch,
        seeds: tuple[int, ...],
        stats: SketchStats,
        builder: TreeBuilder,
        prefix: Path,
    ) -> "_ArenaSketchView | None":
        """Rehydrate a persisted base view, memory-mapped read-only.

        Returns ``None`` (caller cold-builds) unless a complete,
        format- and identity-matching artifact exists.  The attached
        arrays are copy-on-write at the view level: queries read the
        shared pages directly; the first rebase promotes the mutable
        arrays to private copies (:meth:`_promote`) while the large
        immutable postings structures stay mapped forever.
        """
        meta_path = _artifact_file(prefix, "meta", suffix=".json")
        try:
            meta = json.loads(meta_path.read_text())
        except (OSError, ValueError):
            return None
        if (
            meta.get("format") != _SKETCH_FORMAT
            or meta.get("n") != csr.n
            or meta.get("theta") != batch.theta
            or tuple(meta.get("seeds", ())) != tuple(seeds)
        ):
            return None
        arrays = {}
        try:
            for tag, _ in _ARTIFACT_FIELDS:
                arrays[tag] = np.load(
                    _artifact_file(prefix, tag), mmap_mode="r"
                )
        except (OSError, ValueError):
            return None
        used = int(meta.get("used", -1))
        theta = batch.theta
        if not _artifact_shapes_ok(arrays, csr.n, theta, used):
            return None
        view = cls.__new__(cls)
        view.csr = csr
        view.batch = batch
        view.seeds = seeds
        view.stats = stats
        view.builder = builder
        view.root = csr.n
        view.theta = theta
        view.blocked = frozenset()
        view._writable = False
        view._used = used
        view._spread_sum = int(meta["spread_sum"])
        view._accounted_arena = 0
        view._accounted_postings = 0
        for tag, attr in _ARTIFACT_FIELDS:
            setattr(view, attr, arrays[tag])
        view._sync_bytes()
        stats.rehydrations += 1
        return view

    def _promote(self) -> None:
        """First-write promotion of a rehydrated view.

        Copies exactly the arrays a rebase mutates — the delta sums,
        aliveness bits, arenas and slot tables — into private writable
        memory.  The postings CSR, search keys and by-sample table are
        immutable for the view's lifetime and keep reading the shared
        mapping, so promotion costs one pass over the mutable half
        only.  No-op for cold-built (already private) views.
        """
        if self._writable:
            return
        for attr in (
            "_delta_sum",
            "_post_alive",
            "_order_arena",
            "_sizes_arena",
            "_starts",
            "_lengths",
        ):
            setattr(self, attr, np.array(getattr(self, attr)))
        self._writable = True

    # ------------------------------------------------------------------
    # byte accounting (all gauges re-synced only after success)
    # ------------------------------------------------------------------
    def _arena_nbytes(self) -> int:
        return int(
            self._order_arena.nbytes
            + self._sizes_arena.nbytes
            + self._starts.nbytes
            + self._lengths.nbytes
        )

    def _postings_nbytes(self) -> int:
        return int(
            self._post_indptr.nbytes
            + self._post_samples.nbytes
            + self._post_alive.nbytes
            + self._post_key.nbytes
            + self._samp_indptr.nbytes
            + self._samp_pidx.nbytes
        )

    def _sync_bytes(self) -> None:
        # tree_bytes is by definition the arena + postings total, so
        # its delta derives from the other two gauges — one source of
        # truth, no third accumulator to drift
        arena = self._arena_nbytes()
        postings = self._postings_nbytes()
        delta_arena = arena - self._accounted_arena
        delta_postings = postings - self._accounted_postings
        self.stats.arena_bytes += delta_arena
        self.stats.postings_bytes += delta_postings
        self.stats.tree_bytes += delta_arena + delta_postings
        self._accounted_arena = arena
        self._accounted_postings = postings

    def drop(self) -> None:
        """Release the arena and postings (view eviction / close)."""
        self.stats.arena_bytes -= self._accounted_arena
        self.stats.postings_bytes -= self._accounted_postings
        self.stats.tree_bytes -= (
            self._accounted_arena + self._accounted_postings
        )
        self._accounted_arena = 0
        self._accounted_postings = 0
        empty = np.zeros(0, dtype=np.int64)
        self._order_arena = self._sizes_arena = empty
        self._starts = self._lengths = empty
        self._post_indptr = self._post_samples = empty
        self._post_key = self._samp_indptr = self._samp_pidx = empty
        self._post_alive = np.zeros(0, dtype=bool)
        self._used = 0

    # ------------------------------------------------------------------
    # rebase: move the committed blocker set, touching few samples
    # ------------------------------------------------------------------
    def _touched(
        self, added: frozenset[int], removed: frozenset[int]
    ) -> np.ndarray:
        """Samples needing a rebuild: union of the postings rows of
        every moved blocker — *currently alive* postings for added
        blockers (is the vertex reachable right now?), *base* postings
        for removed ones (could unblocking expose it?)."""
        parts: list[np.ndarray] = []
        if added:
            rows = self._postings_rows(added)
            parts.append(self._post_samples[rows[self._post_alive[rows]]])
        if removed:
            parts.append(self._post_samples[self._postings_rows(removed)])
        if not parts:
            return np.zeros(0, dtype=np.int64)
        return np.unique(np.concatenate(parts))

    def _postings_rows(self, vertices: Iterable[int]) -> np.ndarray:
        """Concatenated posting indices of the given vertices' rows."""
        vs = np.asarray(sorted(vertices), dtype=np.int64)
        counts = self._post_indptr[vs + 1] - self._post_indptr[vs]
        return np.repeat(self._post_indptr[vs], counts) + ragged_arange(
            counts
        )

    def rebase(self, blocked: frozenset[int]) -> None:
        if blocked == self.blocked:
            return
        with span("sketch.rebase"):
            touched = self._touched(
                blocked - self.blocked, self.blocked - blocked
            )
            if touched.shape[0]:
                # build first: a builder failure raises here, before
                # any state (deltas, postings, arena, byte gauges) is
                # touched
                lengths, orders, sizes = self.builder.build_packed(
                    self.batch, touched, self.seeds, sorted(blocked)
                )
                self.stats.trees_built += int(touched.shape[0])
                # first write into a rehydrated view: promote the
                # mutable arrays to private copies (after the build,
                # so a builder failure leaves the mapping untouched)
                self._promote()
                self._writeback(touched, lengths, orders, sizes)
                self.stats.rebases += 1
                self._sync_bytes()
            self.blocked = blocked
            self.stats.samples_skipped += self.theta - int(
                touched.shape[0]
            )

    def _writeback(
        self,
        touched: np.ndarray,
        lengths: np.ndarray,
        orders: np.ndarray,
        sizes: np.ndarray,
    ) -> None:
        """Swap the touched samples' trees: one batched delta scatter,
        one postings patch, one arena scatter."""
        # postings patch: kill every touched sample's postings, then
        # revive the (vertex, sample) pairs its new tree still reaches
        # — new reachability is always a subset of base reachability,
        # so every pair resolves to an existing posting.  (Graph
        # deltas break that invariant, which is why apply_delta
        # rebuilds the postings instead of patching them.)
        new_mask = _payload_mask(lengths)
        kill_counts = (
            self._samp_indptr[touched + 1] - self._samp_indptr[touched]
        )
        kill = np.repeat(
            self._samp_indptr[touched], kill_counts
        ) + ragged_arange(kill_counts)
        self._post_alive[self._samp_pidx[kill]] = False
        revive_keys = orders[new_mask] * self.theta + np.repeat(
            touched, lengths - 1
        )
        self._post_alive[
            np.searchsorted(self._post_key, revive_keys)
        ] = True

        self._scatter_trees(touched, lengths, orders, sizes)

    def _scatter_trees(
        self,
        touched: np.ndarray,
        lengths: np.ndarray,
        orders: np.ndarray,
        sizes: np.ndarray,
    ) -> None:
        """Delta aggregation plus arena write-back of rebuilt trees —
        the postings-agnostic half shared by blocker rebases and graph
        deltas."""
        old_lengths = self._lengths[touched]
        old_flat = np.repeat(
            self._starts[touched], old_lengths
        ) + ragged_arange(old_lengths)
        old_orders = self._order_arena[old_flat]
        old_sizes = self._sizes_arena[old_flat]
        old_mask = _payload_mask(old_lengths)
        new_mask = _payload_mask(lengths)

        # -/+ subtree-size deltas of every touched sample in one
        # bincount scatter (all-integer float64 arithmetic, so the
        # reordering vs the per-sample legacy scatters is exact)
        verts = np.concatenate(
            [old_orders[old_mask], orders[new_mask]]
        )
        weights = np.concatenate(
            [
                -old_sizes[old_mask].astype(np.float64),
                sizes[new_mask].astype(np.float64),
            ]
        )
        if verts.shape[0]:
            self._delta_sum += np.bincount(
                verts, weights=weights, minlength=self.csr.n + 1
            )
        self._spread_sum += int(lengths.sum()) - int(old_lengths.sum())

        # arena write-back: in place when the new tree fits its slot
        # (the common case — blocking shrinks trees), appended with
        # amortised doubling when it grew (blockers removed)
        fits = lengths <= old_lengths
        dest = np.where(fits, self._starts[touched], 0)
        if not fits.all():
            grow_lengths = lengths[~fits]
            total = int(grow_lengths.sum())
            self._ensure_capacity(self._used + total)
            grow_starts = np.zeros(grow_lengths.shape[0], dtype=np.int64)
            np.cumsum(grow_lengths[:-1], out=grow_starts[1:])
            dest[~fits] = self._used + grow_starts
            self._used += total
        dest_flat = np.repeat(dest, lengths) + ragged_arange(lengths)
        self._order_arena[dest_flat] = orders
        self._sizes_arena[dest_flat] = sizes
        self._starts[touched] = dest
        self._lengths[touched] = lengths

    def _ensure_capacity(self, need: int) -> None:
        cap = self._order_arena.shape[0]
        if need <= cap:
            return
        new_cap = max(need, 2 * cap)
        for name in ("_order_arena", "_sizes_arena"):
            grown = np.empty(new_cap, dtype=np.int64)
            grown[: self._used] = getattr(self, name)[: self._used]
            setattr(self, name, grown)

    # ------------------------------------------------------------------
    # graph deltas: swap the graph under the view, rebuild few trees
    # ------------------------------------------------------------------
    def apply_delta(
        self,
        csr: CSRGraph,
        batch: SampleBatch,
        touched: np.ndarray,
        builder: TreeBuilder,
        delta: GraphDelta,
    ) -> int:
        """Move this view onto the post-delta graph and samples.

        Caller contract (:meth:`SketchIndex.apply_delta`): the view
        was parked at the unblocked base while the *old* pool state
        was live, so current trees equal base trees and the rebuilt
        postings below need no aliveness patch; ``touched`` is the
        pool's exact changed-sample set for this view's theta prefix.

        The postings rows of the delta's source vertices narrow
        ``touched`` further — a changed edge no sample's base tree
        reaches the source of cannot change any tree
        (:func:`_delta_sources`) — then only the surviving samples'
        trees are rebuilt and scattered into the arena.  The arena is
        re-compacted into cold-build order and the inverted membership
        index is rebuilt from the post-delta trees (a graph insert can
        extend reachability beyond the old base, so the kill/revive
        patch of blocker rebases does not apply).  The resulting view
        state is bit-identical to a cold build over the mutated graph.
        Returns the number of trees rebuilt.
        """
        sources = _delta_sources(delta)
        if touched.shape[0] and sources:
            reach = np.unique(
                self._post_samples[self._postings_rows(sources)]
            )
            touched = touched[
                np.isin(touched, reach, assume_unique=True)
            ]
        self.csr = csr
        self.batch = batch
        self.builder = builder
        count = int(touched.shape[0])
        if count:
            # build first: a builder failure raises here, before any
            # state is touched (same discipline as rebase)
            lengths, orders, sizes = builder.build_packed(
                batch, touched, self.seeds, ()
            )
            self.stats.trees_built += count
            self._promote()
            self._scatter_trees(touched, lengths, orders, sizes)
        if self._used != int(self._lengths.sum()):
            # relocated slots (from this delta or earlier blocker
            # rebases) leave dead slack a persisted artifact must not
            # carry: repack into cold-build order
            self._promote()
            self._compact()
        if count:
            self._rebuild_postings()
        self._sync_bytes()
        return count

    def _compact(self) -> None:
        """Repack the arena contiguously in sample order — the exact
        layout a cold build produces."""
        flat = np.repeat(self._starts, self._lengths) + ragged_arange(
            self._lengths
        )
        self._order_arena = self._order_arena[flat]
        self._sizes_arena = self._sizes_arena[flat]
        starts = np.zeros(self.theta, dtype=np.int64)
        np.cumsum(self._lengths[:-1], out=starts[1:])
        self._starts = starts
        self._used = int(self._lengths.sum())

    def _rebuild_postings(self) -> None:
        """Rebuild the inverted membership index from the current
        arena (all postings alive — only valid parked at the
        unblocked base, where current trees are the base trees)."""
        n = self.csr.n
        counts = self._lengths - 1
        flat = np.repeat(self._starts, self._lengths) + ragged_arange(
            self._lengths
        )
        verts = self._order_arena[flat[_payload_mask(self._lengths)]]
        sample_ids = np.repeat(
            np.arange(self.theta, dtype=np.int64), counts
        )
        self._post_indptr, self._post_samples = postings_csr(
            sample_ids, verts, n
        )
        self._post_alive = np.ones(
            self._post_samples.shape[0], dtype=bool
        )
        self._post_key = (
            np.repeat(
                np.arange(n, dtype=np.int64), np.diff(self._post_indptr)
            )
            * self.theta
            + self._post_samples
        )
        self._samp_indptr = np.zeros(self.theta + 1, dtype=np.int64)
        np.cumsum(
            np.bincount(self._post_samples, minlength=self.theta),
            out=self._samp_indptr[1:],
        )
        self._samp_pidx = np.argsort(self._post_samples, kind="stable")

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def spread(self, blocked: frozenset[int]) -> float:
        self.rebase(blocked)
        self.stats.queries += 1
        return self._spread_sum / self.theta

    def gain(self, v: int, blocked: frozenset[int]) -> float:
        self.rebase(blocked)
        self.stats.queries += 1
        if v in blocked:
            return 0.0
        return float(self._delta_sum[v]) / self.theta

    def gains(self, blocked: frozenset[int]) -> np.ndarray:
        """Every vertex's marginal decrease at once (Algorithm 2)."""
        with span("sketch.gains"):
            self.rebase(blocked)
            self.stats.queries += 1
            return self._delta_sum[: self.csr.n] / self.theta


def _artifact_file(prefix: Path, tag: str, suffix: str = ".npy") -> Path:
    """Path of one artifact field: ``<prefix>.<tag><suffix>``."""
    return prefix.with_name(f"{prefix.name}.{tag}{suffix}")


def _artifact_shapes_ok(
    arrays: dict[str, np.ndarray], n: int, theta: int, used: int
) -> bool:
    """Structural validation of a loaded artifact set.

    Cheap invariant checks (shapes consistent with the graph size,
    ``theta`` and the recorded arena usage) so a truncated or
    mismatched file set degrades to a cold build instead of an
    out-of-bounds read deep inside a query.
    """
    if used < theta or used != int(arrays["lengths"].sum()):
        return False
    postings = arrays["psamples"].shape[0]
    expected = {
        "lengths": theta,
        "starts": theta,
        "order": used,
        "sizes": used,
        "delta": n + 1,
        "pindptr": n + 1,
        "psamples": postings,
        "palive": postings,
        "pkey": postings,
        "sindptr": theta + 1,
        "spidx": postings,
    }
    return all(
        arrays[tag].ndim == 1 and arrays[tag].shape[0] == size
        for tag, size in expected.items()
    ) and bool(arrays["palive"].dtype == np.bool_)


def _payload_mask(lengths: np.ndarray) -> np.ndarray:
    """Mask selecting non-root entries of concatenated tree payloads
    (each tree's root sits at its own offset 0)."""
    total = int(lengths.sum())
    mask = np.ones(total, dtype=bool)
    roots = np.zeros(lengths.shape[0], dtype=np.int64)
    np.cumsum(lengths[:-1], out=roots[1:])
    mask[roots] = False
    return mask


class SketchIndex:
    """Persistent dominator-tree sketches behind ``SpreadEvaluator``.

    Parameters
    ----------
    graph:
        Graph (or frozen CSR) whose live-edge distribution is sampled.
    rng:
        Seed / generator for the sample pool.  An integer seed makes
        results bit-reproducible (and keys the optional disk cache).
    pool:
        Share an existing :class:`SamplePool` (e.g. with a pooled
        Monte-Carlo evaluator) instead of creating one.
    workers:
        Fan the pure-Python tree construction out across this many
        worker processes (only relevant when the compiled batched
        kernel is unavailable; any value yields bit-identical
        results, so the knob is pure throughput).
    layout:
        ``"arena"`` (default) stores each view's trees in a pooled
        arena with an inverted membership index — the fast query
        path; ``"legacy"`` keeps the historical per-sample layout,
        preserved as the bit-identical semantic reference (see the
        module docstring).
    cache_dir / cache_key:
        Sample-pool persistence knobs, forwarded verbatim.

    ``rounds`` in the evaluator protocol selects ``theta``, the number
    of pooled samples the sketches are built from — the Theorem 5
    knob, see :func:`repro.sampling.required_samples` /
    :func:`repro.sampling.resolve_theta`.
    """

    backend = "sketch"

    def __init__(
        self,
        graph: DiGraph | CSRGraph,
        rng: RngLike = None,
        pool: SamplePool | None = None,
        workers: int | None = None,
        layout: str = "arena",
        cache_dir=None,
        cache_key: str | None = None,
    ) -> None:
        if layout not in LAYOUTS:
            raise ValueError(
                f"unknown sketch layout {layout!r}: expected one of "
                + ", ".join(LAYOUTS)
            )
        if pool is not None:
            self.pool = pool
        else:
            self.pool = SamplePool(
                graph, rng, cache_dir=cache_dir, cache_key=cache_key
            )
        self.csr = self.pool.csr
        self.workers = workers
        self.layout = layout
        # when the pool persists its samples, hand the worker pool the
        # .npy paths: sharded builds then ship sample *indices* only
        # and read the pooled samples via a shared read-only mapping
        self.builder = TreeBuilder(
            self.csr, workers=workers,
            sample_paths=self.pool.cache_paths,
        )
        self.stats = SketchStats()
        self._views: dict[tuple[tuple[int, ...], int], object] = {}

    # ------------------------------------------------------------------
    # view management
    # ------------------------------------------------------------------
    def _view(self, seeds: Sequence[int], theta: int):
        if theta <= 0:
            raise ValueError("theta must be positive")
        seed_tuple = tuple(dict.fromkeys(int(s) for s in seeds))
        if not seed_tuple:
            raise ValueError("at least one seed is required")
        for s in seed_tuple:
            if not 0 <= s < self.csr.n:
                raise IndexError(f"seed {s} is not a vertex")
        key = (seed_tuple, theta)
        # pop-then-reinsert both refreshes LRU recency and stays safe
        # against a concurrent close() clearing the dict between the
        # lookup and the refresh (the serving layer's eviction path)
        view = self._views.pop(key, None)
        if view is None:
            batch = self.pool.get(theta)
            prefix = self._artifact_prefix(seed_tuple, theta)
            if prefix is not None:
                view = _ArenaSketchView.from_artifact(
                    self.csr, batch, seed_tuple, self.stats,
                    self.builder, prefix,
                )
            if view is None:
                view_cls = (
                    _ArenaSketchView
                    if self.layout == "arena"
                    else _LegacySketchView
                )
                with span("sketch.build"):
                    view = view_cls(
                        self.csr,
                        batch,
                        seed_tuple,
                        self.stats,
                        self.builder,
                    )
                if prefix is not None:
                    view.save(prefix)
        self._views[key] = view
        while len(self._views) > _MAX_VIEWS:
            self._views.pop(next(iter(self._views))).drop()
        return view

    def _artifact_prefix(
        self, seeds: tuple[int, ...], theta: int
    ) -> Path | None:
        """On-disk prefix for this view's persisted arena artifact, or
        ``None`` when the view is not persistable (no disk-backed
        pool, or legacy layout).

        The key piggybacks on the sample pool's cache digest — which
        already fingerprints the graph structure, probabilities and
        cache key — extended with the artifact format version, layout,
        ``theta`` and the seed set, so any semantic change lands on a
        fresh file name and stale artifacts are simply never loaded.
        """
        if self.layout != "arena":
            return None
        digest = self.pool.cache_digest
        paths = self.pool.cache_paths
        if digest is None or paths is None:
            return None
        seed_key = ",".join(str(s) for s in seeds)
        key = (
            f"{digest}:v{_SKETCH_FORMAT}:{self.layout}"
            f":theta{theta}:seeds{seed_key}"
        )
        short = hashlib.sha256(key.encode()).hexdigest()[:16]
        return Path(paths[0]).parent / f"sketch-{short}"

    @property
    def nbytes(self) -> int:
        """Resident bytes of the cached per-sample tree state (arena
        plus postings for arena views, per-tree arrays for legacy)."""
        return self.stats.tree_bytes

    # ------------------------------------------------------------------
    # incremental graph updates
    # ------------------------------------------------------------------
    def apply_delta(self, delta: GraphDelta) -> PoolDeltaReport:
        """Apply a batch of edge mutations end to end, in place.

        Patches the shared sample pool bit-identically to resampling
        the mutated graph (:meth:`SamplePool.apply_delta`), swaps the
        frozen CSR and tree builder for post-delta ones, and rebases
        every cached view by rebuilding only the trees of samples
        whose survived-edge set changed — everything else (arena
        slots, postings rows, aggregated gains of untouched samples)
        is kept.  Views parked on a non-empty blocker set are first
        rebased to the unblocked base (their next query re-rebases),
        and persistable views are re-saved under the post-delta
        artifact key, so a later process over the mutated graph
        rehydrates the patched state.  Returns the pool's report.
        """
        with span("sketch.delta"):
            # park every view at the unblocked base while the OLD
            # pool state is still live (sharded builds read the
            # persisted pre-delta pool through worker mmaps); after
            # this, current trees == base trees in every view, the
            # contract the per-view delta path relies on
            for view in self._views.values():
                view.rebase(frozenset())
            report = self.pool.apply_delta(delta)
            self.csr = self.pool.csr
            # the builder (and its forked worker pools) shipped the
            # pre-delta CSR and sample paths: replace, don't patch
            self.builder.close()
            self.builder = TreeBuilder(
                self.csr, workers=self.workers,
                sample_paths=self.pool.cache_paths,
            )
            touched_hist, rebuilt_counter = _delta_metrics()
            touched_hist.observe(report.touched_count)
            for (seed_tuple, theta), view in self._views.items():
                batch = self.pool.get(theta)
                touched = report.touched[report.touched < theta]
                rebuilt = view.apply_delta(
                    self.csr, batch, touched, self.builder, delta
                )
                self.stats.delta_trees_rebuilt += rebuilt
                self.stats.delta_samples_skipped += theta - rebuilt
                rebuilt_counter.inc(rebuilt)
                prefix = self._artifact_prefix(seed_tuple, theta)
                if prefix is not None:
                    view.save(prefix)
            self.stats.deltas += 1
            return report

    def close(self) -> None:
        """Drop the cached views and reap the tree-build worker pool
        (and join the evaluator lifecycle)."""
        views = list(self._views.values())
        self._views.clear()
        for view in views:
            view.drop()
        self.builder.close()

    def __enter__(self) -> "SketchIndex":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _blocked_set(
        self, seeds: Sequence[int], blocked: Iterable[int]
    ) -> frozenset[int]:
        blocked_set = frozenset(int(v) for v in blocked)
        n = self.csr.n
        for v in blocked_set:
            if not 0 <= v < n:
                raise ValueError(
                    f"blocked vertex {v} out of range [0, {n})"
                )
        for s in seeds:
            if int(s) in blocked_set:
                raise ValueError(f"seed {s} cannot be blocked")
        return blocked_set

    # ------------------------------------------------------------------
    # SpreadEvaluator protocol + sketch-specific queries
    # ------------------------------------------------------------------
    def expected_spread(
        self,
        seeds: Sequence[int],
        rounds: int,
        blocked: Iterable[int] = (),
    ) -> float:
        """Sketch estimate of ``E(seeds, G[V \\ blocked])`` over
        ``rounds`` pooled samples (seeds counted, per Definition 3)."""
        blocked_set = self._blocked_set(seeds, blocked)
        return self._view(seeds, rounds).spread(blocked_set)

    def marginal_gain(
        self,
        v: int,
        seeds: Sequence[int],
        rounds: int,
        blocked: Iterable[int] = (),
    ) -> float:
        """Estimated spread decrease from *additionally* blocking ``v``.

        Exact per sampled world (Theorem 6): equals
        ``expected_spread(seeds, rounds, blocked) -
        expected_spread(seeds, rounds, blocked + [v])`` on the same
        samples, at the cost of an array lookup.  ``v`` must be a real
        vertex: out-of-range ids raise ``ValueError`` (they would
        otherwise silently read the virtual root's slot or fall off
        the gain array).
        """
        v = int(v)
        if not 0 <= v < self.csr.n:
            raise ValueError(
                f"vertex {v} out of range [0, {self.csr.n})"
            )
        blocked_set = self._blocked_set(seeds, blocked)
        return self._view(seeds, rounds).gain(v, blocked_set)

    def decrease_estimates(
        self,
        seeds: Sequence[int],
        rounds: int,
        blocked: Iterable[int] = (),
    ) -> np.ndarray:
        """``float64[n]`` of every vertex's marginal decrease at once —
        the sketch form of Algorithm 2's output (0 for unreachable or
        already-blocked vertices)."""
        blocked_set = self._blocked_set(seeds, blocked)
        return self._view(seeds, rounds).gains(blocked_set)
