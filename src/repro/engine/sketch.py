"""Dominator-tree sketch index: the paper's estimator as an engine.

The Monte-Carlo backends answer every blocked-set query by re-walking
cascades from scratch; the paper's own estimator (Section V-B/C) shows
that is wasted work.  Draw ``theta`` live-edge samples **once**, build
the dominator tree of each sample from the (virtual) source, and every
query becomes tree arithmetic:

* the expected spread of the current blocker set is the mean reachable
  count, i.e. the mean dominator-tree size (Lemma 1);
* the marginal effect of additionally blocking ``v`` is the mean
  dominator-subtree size of ``v`` — by Theorem 6 the subtree of ``v``
  is *exactly* the set of vertices cut off when ``v`` is removed from
  that sample, so per sampled world the answer is exact, and Theorem 5
  bounds the sampling error of the mean
  (:func:`repro.sampling.required_samples`).

:class:`SketchIndex` packages this as a persistent, stateful index
behind the :class:`~repro.engine.evaluator.SpreadEvaluator` protocol:

* samples come from a :class:`~repro.engine.pool.SamplePool`, so they
  are chunk-seeded (bit-identical regardless of growth history) and
  shareable with the pooled Monte-Carlo backend and across processes;
* trees are built **array-native and batched**
  (:mod:`repro.engine.treebuild`): each sample's CSR is cut straight
  out of the pooled arrays with numpy and handed to the flat
  Lengauer–Tarjan core — no per-sample Python adjacency — and a
  ``workers`` knob fans cold builds and large rebases out across
  cores with results bit-identical to the serial build;
* trees are cached per sample and **rebased** incrementally: moving
  from blocker set ``B`` to ``B'`` re-derives only the samples in
  which some added blocker is currently reachable or some removed
  blocker could become reachable — untouched samples keep their trees;
* aggregated subtree sizes are maintained as one ``float64[n + 1]``
  array, so :meth:`SketchIndex.marginal_gain` is an O(1) lookup after
  the rebase and a whole greedy round of candidate gains costs one
  array read (Algorithm 2's "all candidates at once" property).

Multi-seed queries use a virtual super-source (id ``n``) with
deterministic edges to every seed — joint reachability on the *same*
live-edge draw, which is Lemma 1's estimator without the noisy-or
rebuild of :func:`~repro.core.problem.unify_seeds`.

RIS sketches (:mod:`repro.imax.ris`) do not transfer to blockers —
they sample reverse-reachable sets for *seed placement*; blocking
changes the graph itself, which is why this index re-derives touched
trees instead of reweighting sketches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from ..graph import CSRGraph, DiGraph
from ..rng import RngLike
from .pool import SampleBatch, SamplePool
from .treebuild import TreeBuilder

__all__ = ["SketchIndex", "SketchStats"]

# retained seed-set/theta views (each holds theta cached trees); greedy
# loops use one view, CLI runs use at most one per (selection, judge)
_MAX_VIEWS = 4


@dataclass
class SketchStats:
    """Observability counters for a :class:`SketchIndex`."""

    queries: int = 0
    """Spread / marginal-gain queries answered."""
    rebases: int = 0
    """Blocker-set transitions that re-derived at least one tree."""
    trees_built: int = 0
    """Dominator trees constructed (initial builds + rebases)."""
    samples_skipped: int = 0
    """Samples left untouched by a rebase (the incremental win)."""
    tree_bytes: int = 0
    """Resident bytes of the cached per-sample tree arrays (a live
    gauge, not a counter): grows as views are built, shrinks as views
    are evicted or the index is closed.  The serving layer adds this
    to its artifact byte accounting so LRU byte bounds reflect the
    tree cache, not just the sample pools."""

    def as_dict(self) -> dict[str, int]:
        return {
            "queries": self.queries,
            "rebases": self.rebases,
            "trees_built": self.trees_built,
            "samples_skipped": self.samples_skipped,
            "tree_bytes": self.tree_bytes,
        }


class _SketchView:
    """Per-(seed set, theta) tree cache over a sample batch.

    Holds, for every sample, the dominator tree of the sample *under
    the currently committed blocker set* — as ``(order, sizes)`` flat
    arrays plus the reachable-vertex set used for touch tests — and
    the aggregated subtree-size array over all samples.
    """

    def __init__(
        self,
        csr: CSRGraph,
        batch: SampleBatch,
        seeds: tuple[int, ...],
        stats: SketchStats,
        builder: TreeBuilder,
    ) -> None:
        self.csr = csr
        self.batch = batch
        self.seeds = seeds
        self.stats = stats
        self.builder = builder
        self.root = csr.n  # virtual super-source
        self.theta = batch.theta
        self.blocked: frozenset[int] = frozenset()
        self._orders: list[np.ndarray] = []
        self._sizes: list[np.ndarray] = []
        self._reachable: list[frozenset[int]] = []
        # vertices reachable with *no* blockers: the superset of what
        # any unblocking can expose, used for removed-blocker touch
        # tests
        self._base_reachable: list[frozenset[int]] = []
        self._delta_sum = np.zeros(csr.n + 1, dtype=np.float64)
        self._spread_sum = 0
        # the cold build: every sample's tree in one batched,
        # array-native pass (fanned out across cores when workers say
        # so — bit-identical either way)
        for order, sizes in self._build(range(self.theta), self.blocked):
            self._orders.append(order)
            self._sizes.append(sizes)
            reachable = frozenset(order.tolist())
            self._reachable.append(reachable)
            self._base_reachable.append(reachable)
            self._apply(order, sizes, +1)

    # ------------------------------------------------------------------
    # tree construction and aggregation
    # ------------------------------------------------------------------
    def _build(
        self, sample_indices, blocked: frozenset[int]
    ) -> list[tuple[np.ndarray, np.ndarray]]:
        trees = self.builder.build(
            self.batch, sample_indices, self.seeds, sorted(blocked)
        )
        self.stats.trees_built += len(trees)
        self.stats.tree_bytes += sum(
            order.nbytes + sizes.nbytes for order, sizes in trees
        )
        return trees

    def drop(self) -> None:
        """Release the cached trees (view eviction / index close)."""
        self.stats.tree_bytes -= sum(
            order.nbytes + sizes.nbytes
            for order, sizes in zip(self._orders, self._sizes)
        )
        self._orders.clear()
        self._sizes.clear()
        self._reachable.clear()
        self._base_reachable.clear()

    def _apply(self, order: np.ndarray, sizes: np.ndarray, sign: int) -> None:
        # order[0] is the virtual root; its "subtree" is the whole
        # sample and it is never a blocker candidate, so skip it
        self._spread_sum += sign * (order.shape[0] - 1)
        if order.shape[0] > 1:
            np.add.at(
                self._delta_sum,
                order[1:],
                sign * sizes[1:].astype(np.float64),
            )

    # ------------------------------------------------------------------
    # rebase: move the committed blocker set, touching few samples
    # ------------------------------------------------------------------
    def rebase(self, blocked: frozenset[int]) -> None:
        if blocked == self.blocked:
            return
        added = blocked - self.blocked
        removed = self.blocked - blocked
        touched = [
            t
            for t in range(self.theta)
            if any(v in self._reachable[t] for v in added)
            or any(v in self._base_reachable[t] for v in removed)
        ]
        for t, (order, sizes) in zip(
            touched, self._build(touched, blocked)
        ):
            self._apply(self._orders[t], self._sizes[t], -1)
            self.stats.tree_bytes -= (
                self._orders[t].nbytes + self._sizes[t].nbytes
            )
            self._orders[t] = order
            self._sizes[t] = sizes
            self._reachable[t] = frozenset(order.tolist())
            self._apply(order, sizes, +1)
        self.blocked = blocked
        if touched:
            self.stats.rebases += 1
        self.stats.samples_skipped += self.theta - len(touched)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def spread(self, blocked: frozenset[int]) -> float:
        self.rebase(blocked)
        self.stats.queries += 1
        return self._spread_sum / self.theta

    def gain(self, v: int, blocked: frozenset[int]) -> float:
        self.rebase(blocked)
        self.stats.queries += 1
        if v in blocked:
            return 0.0
        return float(self._delta_sum[v]) / self.theta

    def gains(self, blocked: frozenset[int]) -> np.ndarray:
        """Every vertex's marginal decrease at once (Algorithm 2)."""
        self.rebase(blocked)
        self.stats.queries += 1
        return self._delta_sum[: self.csr.n] / self.theta


class SketchIndex:
    """Persistent dominator-tree sketches behind ``SpreadEvaluator``.

    Parameters
    ----------
    graph:
        Graph (or frozen CSR) whose live-edge distribution is sampled.
    rng:
        Seed / generator for the sample pool.  An integer seed makes
        results bit-reproducible (and keys the optional disk cache).
    pool:
        Share an existing :class:`SamplePool` (e.g. with a pooled
        Monte-Carlo evaluator) instead of creating one.
    workers:
        Fan tree construction (cold view builds, large rebases) out
        across this many worker processes via a shared
        :class:`~repro.engine.treebuild.TreeBuilder` (the pool is
        created lazily on the first large build and reaped by
        :meth:`close`).  ``None`` (the default) builds serially; any
        value yields bit-identical results, so the knob is pure
        throughput.
    cache_dir / cache_key:
        Sample-pool persistence knobs, forwarded verbatim.

    ``rounds`` in the evaluator protocol selects ``theta``, the number
    of pooled samples the sketches are built from — the Theorem 5
    knob, see :func:`repro.sampling.required_samples` /
    :func:`repro.sampling.resolve_theta`.
    """

    backend = "sketch"

    def __init__(
        self,
        graph: DiGraph | CSRGraph,
        rng: RngLike = None,
        pool: SamplePool | None = None,
        workers: int | None = None,
        cache_dir=None,
        cache_key: str | None = None,
    ) -> None:
        if pool is not None:
            self.pool = pool
        else:
            self.pool = SamplePool(
                graph, rng, cache_dir=cache_dir, cache_key=cache_key
            )
        self.csr = self.pool.csr
        self.workers = workers
        self.builder = TreeBuilder(self.csr, workers=workers)
        self.stats = SketchStats()
        self._views: dict[tuple[tuple[int, ...], int], _SketchView] = {}

    # ------------------------------------------------------------------
    # view management
    # ------------------------------------------------------------------
    def _view(self, seeds: Sequence[int], theta: int) -> _SketchView:
        if theta <= 0:
            raise ValueError("theta must be positive")
        seed_tuple = tuple(dict.fromkeys(int(s) for s in seeds))
        if not seed_tuple:
            raise ValueError("at least one seed is required")
        for s in seed_tuple:
            if not 0 <= s < self.csr.n:
                raise IndexError(f"seed {s} is not a vertex")
        key = (seed_tuple, theta)
        # pop-then-reinsert both refreshes LRU recency and stays safe
        # against a concurrent close() clearing the dict between the
        # lookup and the refresh (the serving layer's eviction path)
        view = self._views.pop(key, None)
        if view is None:
            view = _SketchView(
                self.csr,
                self.pool.get(theta),
                seed_tuple,
                self.stats,
                self.builder,
            )
        self._views[key] = view
        while len(self._views) > _MAX_VIEWS:
            self._views.pop(next(iter(self._views))).drop()
        return view

    @property
    def nbytes(self) -> int:
        """Resident bytes of the cached per-sample tree arrays."""
        return self.stats.tree_bytes

    def close(self) -> None:
        """Drop the cached views and reap the tree-build worker pool
        (and join the evaluator lifecycle)."""
        views = list(self._views.values())
        self._views.clear()
        for view in views:
            view.drop()
        self.builder.close()

    def __enter__(self) -> "SketchIndex":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _blocked_set(
        self, seeds: Sequence[int], blocked: Iterable[int]
    ) -> frozenset[int]:
        blocked_set = frozenset(int(v) for v in blocked)
        for s in seeds:
            if int(s) in blocked_set:
                raise ValueError(f"seed {s} cannot be blocked")
        return blocked_set

    # ------------------------------------------------------------------
    # SpreadEvaluator protocol + sketch-specific queries
    # ------------------------------------------------------------------
    def expected_spread(
        self,
        seeds: Sequence[int],
        rounds: int,
        blocked: Iterable[int] = (),
    ) -> float:
        """Sketch estimate of ``E(seeds, G[V \\ blocked])`` over
        ``rounds`` pooled samples (seeds counted, per Definition 3)."""
        blocked_set = self._blocked_set(seeds, blocked)
        return self._view(seeds, rounds).spread(blocked_set)

    def marginal_gain(
        self,
        v: int,
        seeds: Sequence[int],
        rounds: int,
        blocked: Iterable[int] = (),
    ) -> float:
        """Estimated spread decrease from *additionally* blocking ``v``.

        Exact per sampled world (Theorem 6): equals
        ``expected_spread(seeds, rounds, blocked) -
        expected_spread(seeds, rounds, blocked + [v])`` on the same
        samples, at the cost of an array lookup.
        """
        blocked_set = self._blocked_set(seeds, blocked)
        return self._view(seeds, rounds).gain(int(v), blocked_set)

    def decrease_estimates(
        self,
        seeds: Sequence[int],
        rounds: int,
        blocked: Iterable[int] = (),
    ) -> np.ndarray:
        """``float64[n]`` of every vertex's marginal decrease at once —
        the sketch form of Algorithm 2's output (0 for unreachable or
        already-blocked vertices)."""
        blocked_set = self._blocked_set(seeds, blocked)
        return self._view(seeds, rounds).gains(blocked_set)
