"""Worker-pool executor: spread estimation across all cores.

``expected_spread`` is embarrassingly parallel over simulation rounds.
:class:`ParallelEvaluator` splits the requested rounds into one chunk
per worker and runs the vectorized batch kernel in a persistent
``multiprocessing`` pool:

* the frozen CSR arrays are shipped **once** per worker via the pool
  initializer (with the default ``fork`` start method they are shared
  copy-on-write and never pickled per call);
* every worker draws from its own ``numpy`` stream, derived with
  ``SeedSequence`` spawning from the evaluator's root seed plus a
  per-call counter — results are bit-reproducible for a fixed
  ``(rng, workers)`` pair and call order, while workers never share a
  stream (the classic parallel-RNG correctness trap);
* ``workers=1`` (and any machine with a single core) short-circuits to
  the in-process vectorized kernel, so the facade is safe to use
  unconditionally.

The pool is lazy: no processes are spawned until the first parallel
query.  Use the evaluator as a context manager (or call
:meth:`ParallelEvaluator.close`) to reap workers deterministically.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
from typing import Iterable, Sequence

import numpy as np

from ..graph import CSRGraph, DiGraph
from ..rng import ensure_rng, RngLike
from .kernels import batch_cascades

__all__ = [
    "ParallelEvaluator",
    "default_workers",
    "split_rounds",
    "make_worker_pool",
    "worker_csr",
    "worker_samples",
]

# per-process CSR rehydrated by the pool initializer
_WORKER_CSR: CSRGraph | None = None
# per-process persisted-sample paths + the lazily attached mmaps
_WORKER_SAMPLE_PATHS: tuple[str, str] | None = None
_WORKER_SAMPLES: "tuple[np.ndarray, np.ndarray] | None" = None


def default_workers() -> int:
    """Worker count saturating the machine (at least 1)."""
    return max(1, os.cpu_count() or 1)


def _start_method() -> str:
    """The safest available start method for the calling process.

    ``fork`` is the cheapest (CSR arrays shared copy-on-write) but is
    only safe while the parent is single-threaded: forking with live
    threads can snapshot a lock held by another thread (malloc arena,
    gzip, logging) and deadlock the child.  The serving layer builds
    artifacts from request-handler threads, so under threads we fall
    back to ``forkserver``/``spawn``, where workers start from a clean
    process at the cost of pickling the initargs once per worker.
    """
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods and threading.active_count() == 1:
        return "fork"
    for method in ("forkserver", "spawn"):
        if method in methods:
            return method
    return methods[0]


def make_worker_pool(csr: CSRGraph, workers: int, sample_paths=None):
    """A ``multiprocessing`` pool whose workers hold ``csr`` resident.

    The one piece of worker infrastructure every parallel engine
    component shares: the frozen CSR arrays are shipped once per
    worker through the pool initializer (copy-on-write under ``fork``,
    pickled once per worker otherwise — see :func:`_start_method` for
    how the method is chosen) and task functions read them back via
    :func:`worker_csr`.  Used by :class:`ParallelEvaluator` for spread
    chunks and by :mod:`repro.engine.treebuild` for batched
    dominator-tree construction.

    ``sample_paths`` — the ``(offsets, positions)`` ``.npy`` files of
    a persisted :class:`~repro.engine.pool.SamplePool` — hands workers
    a **read-only memory mapping** of the pooled samples instead of
    pickled per-task sample windows: tasks then ship sample *indices*
    only and read the shared pages via :func:`worker_samples`.  Only
    the paths cross the process boundary; each worker attaches lazily
    on first use.
    """
    context = multiprocessing.get_context(_start_method())
    if sample_paths is not None:
        sample_paths = tuple(str(p) for p in sample_paths)
    return context.Pool(
        processes=workers,
        initializer=_init_worker,
        initargs=(csr.indptr, csr.indices, csr.probs, sample_paths),
    )


def worker_csr() -> CSRGraph:
    """The CSR snapshot installed in this worker by the initializer."""
    if _WORKER_CSR is None:
        raise RuntimeError(
            "worker_csr() called outside a make_worker_pool worker"
        )
    return _WORKER_CSR


def worker_samples(min_theta: int) -> tuple[np.ndarray, np.ndarray]:
    """This worker's mmap of the persisted pool, covering ``min_theta``.

    Attaches ``np.load(..., mmap_mode="r")`` on first use and caches
    the mapping for the life of the worker; when a cached mapping is
    too short (the parent pool grew and re-persisted — renames are
    atomic, so the cached arrays still point at the old inode) the
    worker simply re-attaches the current files.  Offsets are loaded
    before positions: the writer persists positions first, so an
    offsets file always describes a consistent prefix of whatever
    positions file it is paired with (the pool's chunk-seeded samples
    are pure prefix extensions).
    """
    global _WORKER_SAMPLES
    if _WORKER_SAMPLE_PATHS is None:
        raise RuntimeError(
            "worker_samples() requires a pool built with sample_paths"
        )
    cached = _WORKER_SAMPLES
    if cached is None or cached[0].shape[0] - 1 < min_theta:
        off_path, pos_path = _WORKER_SAMPLE_PATHS
        offsets = np.load(off_path, mmap_mode="r")
        positions = np.load(pos_path, mmap_mode="r")
        if offsets.shape[0] - 1 < min_theta:
            raise RuntimeError(
                f"persisted pool at {off_path} holds "
                f"{offsets.shape[0] - 1} samples, task needs "
                f"{min_theta}"
            )
        if positions.shape[0] < int(offsets[-1]):
            raise RuntimeError(
                f"persisted pool at {pos_path} is torn: offsets "
                f"expect {int(offsets[-1])} positions, file holds "
                f"{positions.shape[0]}"
            )
        cached = (offsets, positions)
        _WORKER_SAMPLES = cached
    return cached


def split_rounds(rounds: int, workers: int) -> list[int]:
    """Near-even positive chunk sizes summing to ``rounds``."""
    if rounds <= 0:
        raise ValueError("rounds must be positive")
    workers = max(1, min(workers, rounds))
    base, extra = divmod(rounds, workers)
    return [base + (1 if i < extra else 0) for i in range(workers)]


def _init_worker(indptr, indices, probs, sample_paths=None) -> None:
    global _WORKER_CSR, _WORKER_SAMPLE_PATHS, _WORKER_SAMPLES
    _WORKER_CSR = CSRGraph.from_arrays(indptr, indices, probs)
    _WORKER_SAMPLE_PATHS = sample_paths
    _WORKER_SAMPLES = None


def _run_chunk(task) -> int:
    """Sum of active counts over one worker's chunk of rounds."""
    seed_seq, rounds, seeds, blocked, batch_size = task
    gen = np.random.default_rng(seed_seq)
    counts = batch_cascades(
        _WORKER_CSR, seeds, rounds, gen, blocked, batch_size
    )
    return int(counts.sum())


class ParallelEvaluator:
    """Multi-core Monte-Carlo spread evaluator over a frozen graph.

    Satisfies the :class:`~repro.engine.evaluator.SpreadEvaluator`
    protocol.  See the module docstring for the determinism contract.
    """

    backend = "parallel"

    def __init__(
        self,
        graph: DiGraph | CSRGraph,
        rng: RngLike = None,
        workers: int | None = None,
        batch_size: int | None = None,
    ) -> None:
        self.csr = graph if isinstance(graph, CSRGraph) else CSRGraph(graph)
        self.workers = default_workers() if workers is None else workers
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        self.batch_size = batch_size
        # one root seed drawn up front; per-call streams are spawned
        # from (root, call_index) so repeated queries differ but a
        # fresh evaluator with the same seed replays the sequence.
        self._root = int(ensure_rng(rng).integers(2**63))
        self._calls = 0
        self._pool = None

    # ------------------------------------------------------------------
    # SpreadEvaluator surface
    # ------------------------------------------------------------------
    def expected_spread(
        self,
        seeds: Sequence[int],
        rounds: int,
        blocked: Iterable[int] = (),
    ) -> float:
        """Average active count over ``rounds`` cascades, all cores."""
        if rounds <= 0:
            raise ValueError("rounds must be positive")
        seed_list = list(seeds)
        blocked_list = list(blocked)
        call = self._calls
        self._calls += 1
        chunks = split_rounds(rounds, self.workers)
        streams = np.random.SeedSequence((self._root, call)).spawn(
            len(chunks)
        )
        if len(chunks) == 1:
            gen = np.random.default_rng(streams[0])
            counts = batch_cascades(
                self.csr, seed_list, rounds, gen, blocked_list,
                self.batch_size,
            )
            return float(counts.sum()) / rounds
        tasks = [
            (stream, chunk, seed_list, blocked_list, self.batch_size)
            for stream, chunk in zip(streams, chunks)
        ]
        totals = self._ensure_pool().map(_run_chunk, tasks)
        return float(sum(totals)) / rounds

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def _ensure_pool(self):
        if self._pool is None:
            self._pool = make_worker_pool(self.csr, self.workers)
        return self._pool

    def close(self) -> None:
        """Terminate the worker pool (idempotent)."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "ParallelEvaluator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter teardown
        try:
            self.close()
        except Exception:
            pass
