"""The ``SpreadEvaluator`` protocol and its backend facade.

Every consumer of a spread oracle — BaselineGreedy's inner loop, the
final-quality evaluation of the benchmark harness, the CLI — needs the
same one-method surface: *"expected spread of these seeds over this
many rounds with these vertices blocked"*.  This module names that
surface as a protocol and provides one constructor,
:func:`make_evaluator`, over the four interchangeable backends:

``scalar``
    The original pure-Python :class:`~repro.spread.MonteCarloEngine`
    (which already satisfies the protocol structurally) — the reference
    implementation every other backend is tested against.
``vectorized``
    The numpy batch kernel of :mod:`repro.engine.kernels`.
``parallel``
    The multi-core executor of :mod:`repro.engine.parallel`.
``pooled``
    Reuses one persistent set of live-edge samples
    (:mod:`repro.engine.pool`) across every query; ``rounds`` selects
    how many pooled samples to evaluate.
``sketch``
    The paper's dominator-subtree estimator as a persistent index
    (:mod:`repro.engine.sketch`): pooled samples plus one cached
    dominator tree per sample, rebased incrementally as the blocker
    set moves.  Additionally answers
    :meth:`~repro.engine.sketch.SketchIndex.marginal_gain` in O(1),
    which the lazy greedy loops (:mod:`repro.core.lazy`) exploit.

All backends estimate the same quantity ``E(S, G[V \\ blocked])``
(Definition 3, seeds counted); they differ only in throughput and RNG
stream, so fixed-seed results are reproducible per backend but not
identical across backends.
"""

from __future__ import annotations

import warnings
from typing import Iterable, Protocol, runtime_checkable, Sequence

import numpy as np

from ..graph import CSRGraph, DiGraph
from ..rng import ensure_rng, RngLike
from ..spread import MonteCarloEngine
from .kernels import (
    auto_batch_size,
    batch_activation_counts,
    batch_cascades,
    batch_spread,
    reach_counts_from_alive,
)
from .parallel import ParallelEvaluator
from .pool import SamplePool
from .sketch import SketchIndex
from .spec import BACKENDS, EngineSpec

__all__ = [
    "SpreadEvaluator",
    "ScalarEvaluator",
    "VectorizedEvaluator",
    "PooledEvaluator",
    "BACKENDS",
    "EngineSpec",
    "make_evaluator",
    "build_evaluator",
]


@runtime_checkable
class SpreadEvaluator(Protocol):
    """Anything that can answer expected-spread queries on one graph."""

    csr: CSRGraph

    def expected_spread(
        self,
        seeds: Sequence[int],
        rounds: int,
        blocked: Iterable[int] = (),
    ) -> float:
        """Estimate of ``E(seeds, G[V \\ blocked])`` from ``rounds``
        simulations (or pooled samples)."""
        ...


class _EvaluatorLifecycle:
    """Uniform close/context-manager surface for in-process backends.

    The parallel backend owns real OS resources (a worker pool) and
    must be closed; the in-process backends have nothing to release
    but gain the same ``with build_evaluator(...) as ev:`` shape so
    callers — the CLI, the service, benchmarks — never special-case
    the backend when tearing down.
    """

    def close(self) -> None:
        """Release backend resources (no-op for in-process backends)."""

    def __enter__(self):
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class ScalarEvaluator(_EvaluatorLifecycle, MonteCarloEngine):
    """The reference backend: the scalar Monte-Carlo engine, renamed.

    Exists so ``make_evaluator(graph, "scalar")`` reads symmetrically
    with the other backends; behaviour is exactly
    :class:`~repro.spread.MonteCarloEngine`.
    """

    backend = "scalar"


class VectorizedEvaluator(_EvaluatorLifecycle):
    """Spread evaluator backed by the numpy batch kernel."""

    backend = "vectorized"

    def __init__(
        self,
        graph: DiGraph | CSRGraph,
        rng: RngLike = None,
        batch_size: int | None = None,
    ) -> None:
        self.csr = graph if isinstance(graph, CSRGraph) else CSRGraph(graph)
        self._gen = ensure_rng(rng)
        self.batch_size = batch_size

    def expected_spread(
        self,
        seeds: Sequence[int],
        rounds: int,
        blocked: Iterable[int] = (),
    ) -> float:
        return batch_spread(
            self.csr, seeds, rounds, self._gen, blocked, self.batch_size
        )

    def spread_samples(
        self,
        seeds: Sequence[int],
        rounds: int,
        blocked: Iterable[int] = (),
    ) -> np.ndarray:
        """Per-round active counts (for confidence intervals)."""
        return batch_cascades(
            self.csr, seeds, rounds, self._gen, blocked, self.batch_size
        )

    def activation_frequencies(
        self,
        seeds: Sequence[int],
        rounds: int,
        blocked: Iterable[int] = (),
    ) -> np.ndarray:
        """Per-vertex activation frequency estimate of ``P_G(x, S)``."""
        counts = batch_activation_counts(
            self.csr, seeds, rounds, self._gen, blocked, self.batch_size
        )
        return counts / rounds


class PooledEvaluator(_EvaluatorLifecycle):
    """Spread evaluator over a persistent live-edge sample pool.

    ``rounds`` selects how many pooled samples the estimate averages
    over; samples are drawn once and reused across queries (and across
    processes when the pool is disk-backed), so repeated queries —
    e.g. a greedy loop probing many blocked sets — pay traversal cost
    only.  Estimates across queries share the pool's worlds: they are
    *common random numbers*, which cancels between-query sampling
    noise when comparing blocked sets.
    """

    backend = "pooled"

    def __init__(
        self,
        graph: DiGraph | CSRGraph,
        rng: RngLike = None,
        pool: SamplePool | None = None,
        cache_dir=None,
        cache_key: str | None = None,
        batch_size: int | None = None,
    ) -> None:
        if pool is not None:
            self.pool = pool
        else:
            self.pool = SamplePool(
                graph, rng, cache_dir=cache_dir, cache_key=cache_key
            )
        self.csr = self.pool.csr
        self.batch_size = batch_size

    def apply_delta(self, delta):
        """Patch the pool for a batch of edge mutations
        (:meth:`~repro.engine.pool.SamplePool.apply_delta`) and refresh
        this evaluator's CSR snapshot.  Returns the pool's report."""
        report = self.pool.apply_delta(delta)
        self.refresh_graph()
        return report

    def refresh_graph(self) -> None:
        """Re-read the pool's CSR after someone else applied a delta
        to the shared pool (e.g. a sketch index sharing it) — the
        cached snapshot would otherwise disagree with the samples."""
        self.csr = self.pool.csr

    def expected_spread(
        self,
        seeds: Sequence[int],
        rounds: int,
        blocked: Iterable[int] = (),
    ) -> float:
        return self.expected_spread_many(seeds, rounds, [list(blocked)])[0]

    def expected_spread_many(
        self,
        seeds: Sequence[int],
        rounds: int,
        blocked_sets: Sequence[Iterable[int]],
    ) -> list[float]:
        """One estimate per blocked set, sharing the sample traversal.

        The expensive part of a pooled query is materialising each
        chunk's boolean aliveness matrix; a batch of queries that
        differ only in their blocked sets (the service's coalesced
        spread requests) pays that once per chunk instead of once per
        query.  Results are bit-identical to ``len(blocked_sets)``
        separate :meth:`expected_spread` calls — same samples, same
        chunking, same integer sums — so batching is invisible to
        callers comparing against serial execution.
        """
        if rounds <= 0:
            raise ValueError("rounds must be positive")
        if not blocked_sets:
            return []
        batch = self.pool.get(rounds)
        seed_list = list(seeds)
        blocked_lists = [list(b) for b in blocked_sets]
        step = auto_batch_size(max(self.csr.m, self.csr.n), self.batch_size)
        totals = [0] * len(blocked_lists)
        for lo in range(0, rounds, step):
            hi = min(lo + step, rounds)
            alive = batch.alive_matrix(lo, hi)
            for i, blocked_list in enumerate(blocked_lists):
                totals[i] += int(
                    reach_counts_from_alive(
                        self.csr, seed_list, alive, blocked_list
                    ).sum()
                )
        return [total / rounds for total in totals]


def _legacy_warning(factory: str) -> None:
    warnings.warn(
        f"passing a backend name and loose keywords to {factory}() is "
        "deprecated; pass an EngineSpec "
        "(repro.engine.EngineSpec) instead — see docs/api.md",
        DeprecationWarning,
        stacklevel=3,
    )


def _make_evaluator(
    graph: DiGraph | CSRGraph,
    backend: str,
    rng: RngLike = None,
    workers: int | None = None,
    batch_size: int | None = None,
    cache_dir=None,
    cache_key: str | None = None,
    pool: SamplePool | None = None,
    layout: str = "arena",
) -> SpreadEvaluator:
    """Warning-free factory core shared by both calling conventions."""
    name = backend.lower()
    if name == "scalar":
        return ScalarEvaluator(graph, rng)
    if name == "vectorized":
        return VectorizedEvaluator(graph, rng, batch_size=batch_size)
    if name == "parallel":
        return ParallelEvaluator(
            graph, rng, workers=workers, batch_size=batch_size
        )
    if name == "pooled":
        return PooledEvaluator(
            graph,
            rng,
            pool=pool,
            cache_dir=cache_dir,
            cache_key=cache_key,
            batch_size=batch_size,
        )
    if name == "sketch":
        return SketchIndex(
            graph,
            rng,
            pool=pool,
            workers=workers,
            layout=layout,
            cache_dir=cache_dir,
            cache_key=cache_key,
        )
    raise ValueError(
        f"unknown engine backend {backend!r}: expected one of "
        + ", ".join(sorted(BACKENDS))
        + " (see repro.engine.make_evaluator)"
    )


def make_evaluator(
    graph: DiGraph | CSRGraph,
    spec: EngineSpec | str = "scalar",
    rng: RngLike = None,
    workers: int | None = None,
    batch_size: int | None = None,
    cache_dir=None,
    cache_key: str | None = None,
    pool: SamplePool | None = None,
    layout: str = "arena",
) -> SpreadEvaluator:
    """Construct a spread evaluator for ``graph`` from an ``EngineSpec``.

    Canonical form: ``make_evaluator(graph, spec)`` with ``spec`` an
    :class:`~repro.engine.spec.EngineSpec` — the spec's ``seed`` seeds
    the evaluator, ``workers``/``layout``/``cache_dir`` configure it,
    and its ``model``/``theta`` fields key artifacts (the factory
    consumes an already-prepared graph and per-query ``rounds``, so it
    does not read them).  Runtime-only knobs remain keywords: ``pool``
    shares an existing :class:`~repro.engine.pool.SamplePool`,
    ``batch_size`` tunes the vectorized family, and an explicit
    ``rng`` generator overrides the spec seed.

    The historical form — a backend **name** plus loose keywords
    (``backend``, ``rng``, ``workers``, ``cache_dir``...) — still
    works but emits :class:`DeprecationWarning`; migrate to the spec.

    Parameters (legacy form)
    ------------------------
    spec:
        One of :data:`BACKENDS` (as a string).
    workers:
        Worker processes: simulation chunks for the ``parallel``
        backend (default: all cores), sharded dominator-tree
        construction for the ``sketch`` backend (default: serial;
        results are bit-identical either way).
    batch_size:
        Cascades simulated per numpy batch (vectorized family).
    cache_dir / cache_key / pool:
        Sample-pool persistence knobs (``pooled``/``sketch`` backends).
    layout:
        Sketch view layout (``sketch`` backend only): ``"arena"``
        (default, the pooled-arena query path) or ``"legacy"`` (the
        per-sample reference layout) — bit-identical answers either
        way, see :class:`~repro.engine.sketch.SketchIndex`.
    """
    if isinstance(spec, EngineSpec):
        resolved_dir = spec.cache_dir if cache_dir is None else cache_dir
        if cache_key is None and resolved_dir is not None:
            cache_key = spec.cache_key(stream=0)
        return _make_evaluator(
            graph,
            spec.engine,
            rng=spec.seed if rng is None else rng,
            workers=spec.workers if workers is None else workers,
            batch_size=batch_size,
            cache_dir=resolved_dir,
            cache_key=cache_key,
            pool=pool,
            layout=spec.layout,
        )
    _legacy_warning("make_evaluator")
    return _make_evaluator(
        graph,
        spec,
        rng=rng,
        workers=workers,
        batch_size=batch_size,
        cache_dir=cache_dir,
        cache_key=cache_key,
        pool=pool,
        layout=layout,
    )


def _build_evaluator(
    graph: DiGraph | CSRGraph,
    backend: str,
    rng: RngLike = None,
    stream: int = 0,
    workers: int | None = None,
    batch_size: int | None = None,
    cache_dir=None,
    cache_key: str | None = None,
    pool: SamplePool | None = None,
    layout: str = "arena",
) -> SpreadEvaluator:
    """Warning-free stream-discipline core (see :func:`build_evaluator`)."""
    if isinstance(rng, (int, np.integer)) and not isinstance(rng, bool):
        if cache_key is None:
            cache_key = f"seed{int(rng)}-stream{int(stream)}"
        rng = np.random.default_rng(
            np.random.SeedSequence((int(rng), int(stream)))
        )
    return _make_evaluator(
        graph,
        backend,
        rng=rng,
        workers=workers,
        batch_size=batch_size,
        cache_dir=cache_dir,
        cache_key=cache_key,
        pool=pool,
        layout=layout,
    )


def build_evaluator(
    graph: DiGraph | CSRGraph,
    spec: EngineSpec | str,
    rng: RngLike = None,
    stream: int = 0,
    workers: int | None = None,
    batch_size: int | None = None,
    cache_dir=None,
    cache_key: str | None = None,
    pool: SamplePool | None = None,
    layout: str = "arena",
) -> SpreadEvaluator:
    """:func:`make_evaluator` plus the RNG-stream discipline callers need.

    Canonical form: ``build_evaluator(graph, spec, stream=...)`` with
    ``spec`` an :class:`~repro.engine.spec.EngineSpec`.  Every front
    end (the CLI, the serving layer, benchmarks) wants the same two
    things on top of the raw factory:

    * **independent streams from one seed** — ``stream`` derives a
      child generator via ``SeedSequence((seed, stream))``, so e.g. a
      selection loop (stream 0) and the final quality judge (stream 1)
      never share random worlds (with pooled backends, sharing would
      score a winner on the very samples that selected it);
    * **a context manager** — every evaluator built here supports
      ``with``/``close()``, so worker pools are reliably shut down.

    With a spec, the on-disk ``cache_key`` is
    :meth:`EngineSpec.cache_key` (model + seed + stream), keeping
    pools and sketch artifacts correctly keyed even though the factory
    only sees the derived generator.  An explicit ``rng`` generator
    overrides the spec seed (and ``stream`` is then ignored), and an
    explicit ``pool`` bypasses pool creation entirely.

    The historical form — a backend **name** plus an integer or
    generator ``rng`` and loose keywords — still works but emits
    :class:`DeprecationWarning`; it derives the legacy
    ``seed{rng}-stream{stream}`` cache key for integer seeds.
    """
    if isinstance(spec, EngineSpec):
        if cache_key is None:
            cache_key = spec.cache_key(stream)
        return _build_evaluator(
            graph,
            spec.engine,
            rng=spec.seed if rng is None else rng,
            stream=stream,
            workers=spec.workers if workers is None else workers,
            batch_size=batch_size,
            cache_dir=spec.cache_dir if cache_dir is None else cache_dir,
            cache_key=cache_key,
            pool=pool,
            layout=spec.layout,
        )
    _legacy_warning("build_evaluator")
    return _build_evaluator(
        graph,
        spec,
        rng=rng,
        stream=stream,
        workers=workers,
        batch_size=batch_size,
        cache_dir=cache_dir,
        cache_key=cache_key,
        pool=pool,
        layout=layout,
    )
