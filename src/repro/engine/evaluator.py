"""The ``SpreadEvaluator`` protocol and its backend facade.

Every consumer of a spread oracle — BaselineGreedy's inner loop, the
final-quality evaluation of the benchmark harness, the CLI — needs the
same one-method surface: *"expected spread of these seeds over this
many rounds with these vertices blocked"*.  This module names that
surface as a protocol and provides one constructor,
:func:`make_evaluator`, over the four interchangeable backends:

``scalar``
    The original pure-Python :class:`~repro.spread.MonteCarloEngine`
    (which already satisfies the protocol structurally) — the reference
    implementation every other backend is tested against.
``vectorized``
    The numpy batch kernel of :mod:`repro.engine.kernels`.
``parallel``
    The multi-core executor of :mod:`repro.engine.parallel`.
``pooled``
    Reuses one persistent set of live-edge samples
    (:mod:`repro.engine.pool`) across every query; ``rounds`` selects
    how many pooled samples to evaluate.
``sketch``
    The paper's dominator-subtree estimator as a persistent index
    (:mod:`repro.engine.sketch`): pooled samples plus one cached
    dominator tree per sample, rebased incrementally as the blocker
    set moves.  Additionally answers
    :meth:`~repro.engine.sketch.SketchIndex.marginal_gain` in O(1),
    which the lazy greedy loops (:mod:`repro.core.lazy`) exploit.

All backends estimate the same quantity ``E(S, G[V \\ blocked])``
(Definition 3, seeds counted); they differ only in throughput and RNG
stream, so fixed-seed results are reproducible per backend but not
identical across backends.
"""

from __future__ import annotations

from typing import Iterable, Protocol, runtime_checkable, Sequence

import numpy as np

from ..graph import CSRGraph, DiGraph
from ..rng import ensure_rng, RngLike
from ..spread import MonteCarloEngine
from .kernels import (
    auto_batch_size,
    batch_activation_counts,
    batch_cascades,
    batch_spread,
    reach_counts_from_alive,
)
from .parallel import ParallelEvaluator
from .pool import SamplePool
from .sketch import SketchIndex

__all__ = [
    "SpreadEvaluator",
    "ScalarEvaluator",
    "VectorizedEvaluator",
    "PooledEvaluator",
    "BACKENDS",
    "make_evaluator",
]

BACKENDS: tuple[str, ...] = (
    "scalar", "vectorized", "parallel", "pooled", "sketch",
)


@runtime_checkable
class SpreadEvaluator(Protocol):
    """Anything that can answer expected-spread queries on one graph."""

    csr: CSRGraph

    def expected_spread(
        self,
        seeds: Sequence[int],
        rounds: int,
        blocked: Iterable[int] = (),
    ) -> float:
        """Estimate of ``E(seeds, G[V \\ blocked])`` from ``rounds``
        simulations (or pooled samples)."""
        ...


class ScalarEvaluator(MonteCarloEngine):
    """The reference backend: the scalar Monte-Carlo engine, renamed.

    Exists so ``make_evaluator(graph, "scalar")`` reads symmetrically
    with the other backends; behaviour is exactly
    :class:`~repro.spread.MonteCarloEngine`.
    """

    backend = "scalar"


class VectorizedEvaluator:
    """Spread evaluator backed by the numpy batch kernel."""

    backend = "vectorized"

    def __init__(
        self,
        graph: DiGraph | CSRGraph,
        rng: RngLike = None,
        batch_size: int | None = None,
    ) -> None:
        self.csr = graph if isinstance(graph, CSRGraph) else CSRGraph(graph)
        self._gen = ensure_rng(rng)
        self.batch_size = batch_size

    def expected_spread(
        self,
        seeds: Sequence[int],
        rounds: int,
        blocked: Iterable[int] = (),
    ) -> float:
        return batch_spread(
            self.csr, seeds, rounds, self._gen, blocked, self.batch_size
        )

    def spread_samples(
        self,
        seeds: Sequence[int],
        rounds: int,
        blocked: Iterable[int] = (),
    ) -> np.ndarray:
        """Per-round active counts (for confidence intervals)."""
        return batch_cascades(
            self.csr, seeds, rounds, self._gen, blocked, self.batch_size
        )

    def activation_frequencies(
        self,
        seeds: Sequence[int],
        rounds: int,
        blocked: Iterable[int] = (),
    ) -> np.ndarray:
        """Per-vertex activation frequency estimate of ``P_G(x, S)``."""
        counts = batch_activation_counts(
            self.csr, seeds, rounds, self._gen, blocked, self.batch_size
        )
        return counts / rounds


class PooledEvaluator:
    """Spread evaluator over a persistent live-edge sample pool.

    ``rounds`` selects how many pooled samples the estimate averages
    over; samples are drawn once and reused across queries (and across
    processes when the pool is disk-backed), so repeated queries —
    e.g. a greedy loop probing many blocked sets — pay traversal cost
    only.  Estimates across queries share the pool's worlds: they are
    *common random numbers*, which cancels between-query sampling
    noise when comparing blocked sets.
    """

    backend = "pooled"

    def __init__(
        self,
        graph: DiGraph | CSRGraph,
        rng: RngLike = None,
        pool: SamplePool | None = None,
        cache_dir=None,
        cache_key: str | None = None,
        batch_size: int | None = None,
    ) -> None:
        if pool is not None:
            self.pool = pool
        else:
            self.pool = SamplePool(
                graph, rng, cache_dir=cache_dir, cache_key=cache_key
            )
        self.csr = self.pool.csr
        self.batch_size = batch_size

    def expected_spread(
        self,
        seeds: Sequence[int],
        rounds: int,
        blocked: Iterable[int] = (),
    ) -> float:
        if rounds <= 0:
            raise ValueError("rounds must be positive")
        batch = self.pool.get(rounds)
        seed_list = list(seeds)
        blocked_list = list(blocked)
        step = auto_batch_size(max(self.csr.m, self.csr.n), self.batch_size)
        total = 0
        for lo in range(0, rounds, step):
            hi = min(lo + step, rounds)
            alive = batch.alive_matrix(lo, hi)
            total += int(
                reach_counts_from_alive(
                    self.csr, seed_list, alive, blocked_list
                ).sum()
            )
        return total / rounds


def make_evaluator(
    graph: DiGraph | CSRGraph,
    backend: str = "scalar",
    rng: RngLike = None,
    workers: int | None = None,
    batch_size: int | None = None,
    cache_dir=None,
    cache_key: str | None = None,
    pool: SamplePool | None = None,
) -> SpreadEvaluator:
    """Construct a spread evaluator for ``graph`` by backend name.

    Parameters
    ----------
    backend:
        One of :data:`BACKENDS`.
    workers:
        Worker processes (``parallel`` backend only; default: all
        cores).
    batch_size:
        Cascades simulated per numpy batch (vectorized family).
    cache_dir / cache_key / pool:
        Sample-pool persistence knobs (``pooled`` backend only).
    """
    name = backend.lower()
    if name == "scalar":
        return ScalarEvaluator(graph, rng)
    if name == "vectorized":
        return VectorizedEvaluator(graph, rng, batch_size=batch_size)
    if name == "parallel":
        return ParallelEvaluator(
            graph, rng, workers=workers, batch_size=batch_size
        )
    if name == "pooled":
        return PooledEvaluator(
            graph,
            rng,
            pool=pool,
            cache_dir=cache_dir,
            cache_key=cache_key,
            batch_size=batch_size,
        )
    if name == "sketch":
        return SketchIndex(
            graph,
            rng,
            pool=pool,
            cache_dir=cache_dir,
            cache_key=cache_key,
        )
    raise ValueError(
        f"unknown engine backend {backend!r}: expected one of "
        + ", ".join(sorted(BACKENDS))
        + " (see repro.engine.make_evaluator)"
    )
