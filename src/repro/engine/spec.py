"""Frozen engine configuration: one value object instead of six knobs.

Every layer that constructs a spread evaluator — the CLI, the serving
layer's artifact cache, benchmarks — used to thread the same loose
keywords (``backend``, ``rng``, ``workers``, ``layout``,
``cache_dir``...) through its own signatures, and each layer invented
its own partial subset.  :class:`EngineSpec` names the full identity
of an engine once:

* **what** is estimated — ``engine`` (one of :data:`BACKENDS`) and
  ``layout`` (sketch view layout, see
  :data:`repro.engine.sketch.LAYOUTS`);
* **which randomness** — ``model`` (edge-probability model, one of
  :data:`MODELS`) and the integer ``seed`` that keys both the RNG
  streams and the on-disk artifact cache;
* **how it runs** — ``workers`` (process fan-out) and ``cache_dir``
  (persistent sample pools + sketch artifacts, memory-mapped on
  rehydrate).

The dataclass is frozen and hashable, so a spec can key caches and be
shared across threads; :meth:`cache_key` derives the stable on-disk
stream identity (model + seed + stream) that the pool and sketch
persistence layers fingerprint.  ``theta`` (the Theorem-5 sample
count) rides along because artifacts are keyed by it — evaluator
factories accept per-query ``rounds`` and do not consume it directly.

:func:`repro.engine.make_evaluator` / :func:`~repro.engine
.build_evaluator` accept an ``EngineSpec`` as the canonical calling
convention; the historical keyword signatures remain as thin
deprecated wrappers.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from pathlib import Path

from .sketch import LAYOUTS

__all__ = ["BACKENDS", "MODELS", "EngineSpec"]

BACKENDS: tuple[str, ...] = (
    "scalar", "vectorized", "parallel", "pooled", "sketch",
)

MODELS: tuple[str, ...] = ("tr", "wc")


@dataclass(frozen=True)
class EngineSpec:
    """Identity + runtime configuration of one spread engine."""

    engine: str = "sketch"
    """Backend name, one of :data:`BACKENDS`."""
    model: str = "wc"
    """Edge-probability model, one of :data:`MODELS` — keys prepared
    graphs and on-disk artifacts; the evaluator factories themselves
    consume already-prepared graphs."""
    theta: int = 200
    """Sample count the artifact is sized for (the Theorem-5 knob)."""
    seed: int = 7
    """Integer root seed: keys RNG streams and the disk cache."""
    workers: int | None = None
    """Worker processes (parallel spread chunks / sharded sketch
    builds); ``None`` = serial, results bit-identical either way."""
    layout: str = "arena"
    """Sketch view layout, one of
    :data:`repro.engine.sketch.LAYOUTS`."""
    cache_dir: str | Path | None = None
    """Directory for persistent, memory-mappable artifacts (sample
    pools and arena sketch views); ``None`` = memory only."""

    def __post_init__(self) -> None:
        if self.engine not in BACKENDS:
            raise ValueError(
                f"unknown engine {self.engine!r}: expected one of "
                + ", ".join(BACKENDS)
            )
        if self.model not in MODELS:
            raise ValueError(
                f"unknown model {self.model!r}: expected one of "
                + ", ".join(MODELS)
            )
        if isinstance(self.theta, bool) or not isinstance(self.theta, int):
            raise ValueError("theta must be an integer")
        if self.theta <= 0:
            raise ValueError("theta must be positive")
        if isinstance(self.seed, bool) or not isinstance(self.seed, int):
            raise ValueError("seed must be an integer")
        if self.workers is not None and self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.layout not in LAYOUTS:
            raise ValueError(
                f"unknown sketch layout {self.layout!r}: expected one "
                "of " + ", ".join(LAYOUTS)
            )

    # ------------------------------------------------------------------
    # derived identities
    # ------------------------------------------------------------------
    def cache_key(self, stream: int = 0) -> str:
        """Stable on-disk stream identity for artifact fingerprints.

        Includes the model so pools prepared under different
        probability models never collide even when a caller reuses one
        ``cache_dir`` (graph content already contributes the
        probability arrays, the key makes the intent explicit)."""
        return f"{self.model}-seed{self.seed}-stream{int(stream)}"

    def with_engine(self, engine: str) -> "EngineSpec":
        """This spec with a different backend (same identity knobs)."""
        return replace(self, engine=engine)

    def as_dict(self) -> dict[str, object]:
        return {
            "engine": self.engine,
            "model": self.model,
            "theta": self.theta,
            "seed": self.seed,
            "workers": self.workers,
            "layout": self.layout,
            "cache_dir": (
                None if self.cache_dir is None else str(self.cache_dir)
            ),
        }
