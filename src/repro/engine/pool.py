"""Persistent live-edge sample pool with cross-query reuse.

AdvancedGreedy's key cost saving (Section V-C) is that one set of
sampled graphs answers *every* candidate's decrease query in a round.
:class:`SamplePool` generalises that trick across queries, algorithms
and — optionally — processes:

* samples (Definition 4's random sampled graphs) are materialised
  **once** per graph, in a compact flat-array layout (``offsets`` +
  surviving edge ``positions``, the same CSR idea one level up);
* a request for ``theta`` samples is served from the pool's prefix when
  enough samples exist (a *hit*) and triggers incremental generation of
  only the shortfall otherwise (a *miss* grows the pool, it never
  regenerates);
* blocking is applied at traversal time by the consumer (see
  :func:`~repro.engine.kernels.reach_counts_from_alive`), so the same
  samples serve every blocked-set query;
* with a ``cache_dir`` the arrays are persisted as ``.npy`` files keyed
  by a fingerprint of the graph, probabilities and seed, and are loaded
  back **memory-mapped** — a second process (or a later run) pays no
  sampling cost and shares pages with its siblings.

``SamplePool.stats`` exposes hit/miss/disk counters so benchmarks and
services can observe cache effectiveness.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..graph import CSRGraph, DiGraph
from ..obs import span, track
from ..rng import ensure_rng, RngLike

__all__ = ["SampleBatch", "SamplePool", "PoolStats"]

# cap on the (chunk, m) coin matrix drawn per generation step
_COIN_CELL_BUDGET = 8_000_000


@dataclass
class PoolStats:
    """Observability counters for a :class:`SamplePool`."""

    hits: int = 0
    """Requests fully served from already-materialised samples."""
    misses: int = 0
    """Requests that forced generation of additional samples."""
    generated: int = 0
    """Total samples materialised by this process."""
    disk_loads: int = 0
    """Times a persisted pool was attached from ``cache_dir``."""
    disk_saves: int = 0
    """Times the pool was persisted to ``cache_dir``."""

    def __post_init__(self) -> None:
        # re-register into the shared metrics registry: the attribute
        # API above is unchanged; repro.obs sums these counters across
        # live instances at collection time (repro_pool_*_total)
        track("pool", self)

    def as_dict(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "generated": self.generated,
            "disk_loads": self.disk_loads,
            "disk_saves": self.disk_saves,
        }


@dataclass(frozen=True)
class SampleBatch:
    """``theta`` live-edge samples in a flat CSR-like layout.

    Sample ``t`` survives exactly the edges (CSR positions)
    ``positions[offsets[t]:offsets[t + 1]]``.
    """

    theta: int
    offsets: np.ndarray
    positions: np.ndarray
    m: int
    """Edge count of the graph the samples were drawn from."""

    def surviving(self, t: int) -> np.ndarray:
        """Surviving edge positions of sample ``t``."""
        return self.positions[self.offsets[t]: self.offsets[t + 1]]

    def pack(self, sample_indices) -> tuple[np.ndarray, np.ndarray]:
        """``(offsets, positions)`` of an arbitrary subset of samples.

        The contiguous analogue of calling :meth:`surviving` per
        index: ``positions[offsets[i]:offsets[i + 1]]`` is the
        surviving-edge array of ``sample_indices[i]``.  One pair of
        flat arrays, so a batched consumer (the sketch tree builder's
        worker tasks) ships a whole chunk as two cheap pickles —
        and a memory-mapped pool materialises only the packed window.
        """
        idx = np.asarray(list(sample_indices), dtype=np.int64)
        lengths = self.offsets[idx + 1] - self.offsets[idx]
        offsets = np.zeros(idx.shape[0] + 1, dtype=np.int64)
        np.cumsum(lengths, out=offsets[1:])
        if idx.shape[0] == 0:
            return offsets, np.zeros(0, dtype=np.int64)
        positions = np.concatenate(
            [self.surviving(int(t)) for t in idx]
        )
        return offsets, positions

    def alive_matrix(self, lo: int, hi: int) -> np.ndarray:
        """Boolean ``(hi - lo, m)`` aliveness matrix of a sample slice.

        Materialises only the requested window so callers can stream
        the pool through :func:`reach_counts_from_alive` chunk by
        chunk without ever holding ``theta * m`` bools.
        """
        if not 0 <= lo <= hi <= self.theta:
            raise ValueError(f"bad sample window [{lo}, {hi})")
        rows = np.repeat(
            np.arange(hi - lo, dtype=np.int64),
            np.diff(self.offsets[lo: hi + 1]),
        )
        alive = np.zeros((hi - lo, self.m), dtype=bool)
        alive[rows, self.positions[self.offsets[lo]: self.offsets[hi]]] = True
        return alive

    @property
    def nbytes(self) -> int:
        return int(self.offsets.nbytes + self.positions.nbytes)


class SamplePool:
    """Growing, optionally disk-backed pool of live-edge samples.

    Parameters
    ----------
    graph:
        Graph (or frozen CSR) whose live-edge distribution is sampled.
    rng:
        Seed / generator for the coin flips.  An **integer** seed also
        keys the on-disk cache; with generator/fresh entropy the pool
        is memory-only unless ``cache_key`` names the stream.
    cache_dir:
        Directory for persisted pools.  Created on demand.  Files are
        ``pool-<fingerprint>.{offsets,positions}.npy`` and are loaded
        memory-mapped.
    cache_key:
        Explicit stream identity for the disk fingerprint, for callers
        that pass a live generator but still want persistence.
    """

    def __init__(
        self,
        graph: DiGraph | CSRGraph,
        rng: RngLike = None,
        cache_dir: str | Path | None = None,
        cache_key: str | None = None,
    ) -> None:
        self.csr = graph if isinstance(graph, CSRGraph) else CSRGraph(graph)
        # sample i is a pure function of (root, chunk layout): chunk k
        # is drawn from SeedSequence((root, k)), so a pool attached
        # from disk continues with fresh worlds — never replays the
        # persisted prefix — and any two processes sharing a seed
        # materialise identical pools regardless of growth history.
        self._root = int(ensure_rng(rng).integers(2**63))
        self._chunk = max(1, _COIN_CELL_BUDGET // max(self.csr.m, 1))
        self.stats = PoolStats()
        self._theta = 0
        self._offsets = np.zeros(1, dtype=np.int64)
        self._positions = np.zeros(0, dtype=np.int64)
        if cache_key is None and isinstance(rng, int):
            cache_key = f"seed{rng}"
        self._cache_paths: tuple[Path, Path] | None = None
        self._cache_digest: str | None = None
        if cache_dir is not None and cache_key is not None:
            digest = self._fingerprint(cache_key)
            base = Path(cache_dir)
            self._cache_digest = digest
            self._cache_paths = (
                base / f"pool-{digest}.offsets.npy",
                base / f"pool-{digest}.positions.npy",
            )
            self._try_attach()

    # ------------------------------------------------------------------
    # public surface
    # ------------------------------------------------------------------
    @property
    def theta(self) -> int:
        """Number of samples currently materialised."""
        return self._theta

    @property
    def nbytes(self) -> int:
        """Resident bytes of the materialised sample arrays."""
        return int(self._offsets.nbytes + self._positions.nbytes)

    @property
    def cache_paths(self) -> tuple[Path, Path] | None:
        """``(offsets, positions)`` paths of the persisted pool, or
        ``None`` for a memory-only pool.  Consumers that derive their
        own persistent artifacts from these samples (the sketch
        index's arena views) anchor their files next to — and key them
        by — the pool's, and worker processes attach the same files
        memory-mapped instead of receiving pickled sample windows."""
        return self._cache_paths

    @property
    def cache_digest(self) -> str | None:
        """Content fingerprint of the persisted pool (graph arrays +
        probabilities + stream key), or ``None`` when memory-only.
        Stable across processes, so derived artifacts keyed by it are
        shareable the same way the pool files are."""
        return self._cache_digest

    def get(self, theta: int) -> SampleBatch:
        """A batch of the pool's first ``theta`` samples.

        Serving prefixes is what makes reuse sound: the first
        ``theta`` samples are i.i.d. live-edge draws regardless of how
        large the pool has grown since.
        """
        if theta <= 0:
            raise ValueError("theta must be positive")
        if theta <= self._theta:
            self.stats.hits += 1
        else:
            self.stats.misses += 1
            with span("pool.generate"):
                self._grow(theta - self._theta)
            self._persist()
        return SampleBatch(
            theta=theta,
            offsets=self._offsets[: theta + 1],
            positions=self._positions[: self._offsets[theta]],
            m=self.csr.m,
        )

    # ------------------------------------------------------------------
    # generation
    # ------------------------------------------------------------------
    def _grow(self, extra: int) -> None:
        m = self.csr.m
        probs = self.csr.probs
        chunk = self._chunk
        target = self._theta + extra
        chunks_pos: list[np.ndarray] = [self._positions]
        chunks_counts: list[np.ndarray] = []
        for k in range(self._theta // chunk, (target - 1) // chunk + 1):
            # regenerate chunk k in full (cheap, bounded by one chunk)
            # and keep only the sample window this growth step needs —
            # the price of content that is independent of call history
            lo = max(self._theta - k * chunk, 0)
            hi = min(target - k * chunk, chunk)
            if m:
                gen = np.random.default_rng(
                    np.random.SeedSequence((self._root, k))
                )
                coins = gen.random((chunk, m)) < probs
                rows, pos = np.nonzero(coins)
                counts = np.bincount(rows, minlength=chunk)
                offsets = np.zeros(chunk + 1, dtype=np.int64)
                np.cumsum(counts, out=offsets[1:])
                chunks_pos.append(
                    pos[offsets[lo]: offsets[hi]].astype(
                        np.int64, copy=False
                    )
                )
                chunks_counts.append(counts[lo:hi])
            else:
                chunks_counts.append(np.zeros(hi - lo, dtype=np.int64))
        counts = np.concatenate(chunks_counts)
        new_offsets = np.empty(self._theta + extra + 1, dtype=np.int64)
        new_offsets[: self._theta + 1] = self._offsets
        np.cumsum(counts, out=new_offsets[self._theta + 1:])
        new_offsets[self._theta + 1:] += self._offsets[self._theta]
        self._offsets = new_offsets
        self._positions = np.concatenate(chunks_pos)
        self._theta += extra
        self.stats.generated += extra

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def _fingerprint(self, cache_key: str) -> str:
        csr = self.csr
        digest = hashlib.sha256()
        digest.update(f"{csr.n}:{csr.m}:{cache_key}".encode())
        digest.update(np.ascontiguousarray(csr.indptr).tobytes())
        digest.update(np.ascontiguousarray(csr.indices).tobytes())
        digest.update(np.ascontiguousarray(csr.probs).tobytes())
        return digest.hexdigest()[:16]

    def _try_attach(self) -> None:
        assert self._cache_paths is not None
        off_path, pos_path = self._cache_paths
        if not (off_path.is_file() and pos_path.is_file()):
            return
        try:
            offsets = np.load(off_path, mmap_mode="r")
            positions = np.load(pos_path, mmap_mode="r")
        except (OSError, ValueError):  # corrupt/partial cache: ignore
            return
        if offsets.ndim != 1 or offsets.shape[0] < 1:
            return
        self._offsets = offsets
        self._positions = positions
        self._theta = offsets.shape[0] - 1
        self.stats.disk_loads += 1

    def _persist(self) -> None:
        if self._cache_paths is None:
            return
        off_path, pos_path = self._cache_paths
        off_path.parent.mkdir(parents=True, exist_ok=True)
        # write-then-rename so concurrent readers never see a torn
        # file; positions land first — old offsets over new positions
        # is always a consistent prefix, the reverse is not
        for path, array in (
            (pos_path, self._positions),
            (off_path, self._offsets),
        ):
            # the tmp name must keep the .npy suffix or np.save appends one
            tmp = path.with_name(path.name[: -len(".npy")] + ".tmp.npy")
            np.save(tmp, np.asarray(array))
            tmp.replace(path)
        self.stats.disk_saves += 1
