"""Persistent live-edge sample pool with cross-query reuse.

AdvancedGreedy's key cost saving (Section V-C) is that one set of
sampled graphs answers *every* candidate's decrease query in a round.
:class:`SamplePool` generalises that trick across queries, algorithms
and — optionally — processes:

* samples (Definition 4's random sampled graphs) are materialised
  **once** per graph, in a compact flat-array layout (``offsets`` +
  surviving edge ``positions``, the same CSR idea one level up);
* a request for ``theta`` samples is served from the pool's prefix when
  enough samples exist (a *hit*) and triggers incremental generation of
  only the shortfall otherwise (a *miss* grows the pool, it never
  regenerates);
* blocking is applied at traversal time by the consumer (see
  :func:`~repro.engine.kernels.reach_counts_from_alive`), so the same
  samples serve every blocked-set query;
* with a ``cache_dir`` the arrays are persisted as ``.npy`` files keyed
  by a fingerprint of the graph, probabilities and seed, and are loaded
  back **memory-mapped** — a second process (or a later run) pays no
  sampling cost and shares pages with its siblings.

``SamplePool.stats`` exposes hit/miss/disk counters so benchmarks and
services can observe cache effectiveness.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..graph import CSRGraph, DiGraph, GraphDelta
from ..obs import span, track
from ..rng import ensure_rng, RngLike

__all__ = ["PoolDeltaReport", "SampleBatch", "SamplePool", "PoolStats"]

# cap on the (chunk, m) hash matrix materialised per generation step
_COIN_CELL_BUDGET = 8_000_000

# tag mixed into the disk fingerprint: bump when the coin scheme
# changes so a persisted pool can never attach under a different
# sample distribution
_COIN_SCHEME = "coins2"

_GOLDEN = np.uint64(0x9E3779B97F4A7C15)
_MIX_A = np.uint64(0xBF58476D1CE4E5B9)
_MIX_B = np.uint64(0x94D049BB133111EB)


def _mix64(x: np.ndarray) -> np.ndarray:
    """Vectorized splitmix64 finalizer (a bijection on uint64)."""
    x = x.astype(np.uint64, copy=True)
    x ^= x >> np.uint64(30)
    x *= _MIX_A
    x ^= x >> np.uint64(27)
    x *= _MIX_B
    x ^= x >> np.uint64(31)
    return x


def _edge_keys(root: int, src: np.ndarray, dst: np.ndarray) -> np.ndarray:
    """Stable per-edge stream keys: a pure function of ``(root, u, v)``.

    Independent of the edge's CSR position, the graph's edge count and
    the pool's growth history — the property that makes delta patching
    bit-identical to regeneration: an edge keeps its coin stream
    through any sequence of surrounding inserts and deletes.
    """
    h = _mix64(np.full(src.shape, np.uint64(root), dtype=np.uint64))
    h = _mix64(h ^ (src.astype(np.uint64) + np.uint64(1)))
    h = _mix64(h ^ ((dst.astype(np.uint64) + np.uint64(1)) * _GOLDEN))
    return h


def _thresholds(probs: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """``p`` as a uint64 survival threshold: alive iff ``h < thr``.

    ``P(h < floor(p * 2^64)) = p`` up to one part in ``2^64`` for a
    uniform ``h``.  Probabilities so close to 1 that ``p * 2^64``
    rounds to ``2^64`` (including exactly 1.0) are returned in the
    ``sure`` mask and survive unconditionally.
    """
    thr_f = np.ldexp(probs.astype(np.float64, copy=False), 64)
    sure = thr_f >= np.float64(2.0**64)
    thr = np.where(sure, 0.0, thr_f).astype(np.uint64)
    return thr, sure


def _sample_counters(lo: int, hi: int) -> np.ndarray:
    """Per-sample counter increments for samples ``lo .. hi-1``."""
    return np.arange(lo + 1, hi + 1, dtype=np.uint64) * _GOLDEN


@dataclass
class PoolStats:
    """Observability counters for a :class:`SamplePool`."""

    hits: int = 0
    """Requests fully served from already-materialised samples."""
    misses: int = 0
    """Requests that forced generation of additional samples."""
    generated: int = 0
    """Total samples materialised by this process."""
    disk_loads: int = 0
    """Times a persisted pool was attached from ``cache_dir``."""
    disk_saves: int = 0
    """Times the pool was persisted to ``cache_dir``."""
    deltas: int = 0
    """Graph deltas applied in place (:meth:`SamplePool.apply_delta`)."""
    delta_touched: int = 0
    """Total samples whose survived-edge set a delta changed."""

    def __post_init__(self) -> None:
        # re-register into the shared metrics registry: the attribute
        # API above is unchanged; repro.obs sums these counters across
        # live instances at collection time (repro_pool_*_total)
        track("pool", self)

    def as_dict(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "generated": self.generated,
            "disk_loads": self.disk_loads,
            "disk_saves": self.disk_saves,
            "deltas": self.deltas,
            "delta_touched": self.delta_touched,
        }


@dataclass(frozen=True)
class SampleBatch:
    """``theta`` live-edge samples in a flat CSR-like layout.

    Sample ``t`` survives exactly the edges (CSR positions)
    ``positions[offsets[t]:offsets[t + 1]]``.
    """

    theta: int
    offsets: np.ndarray
    positions: np.ndarray
    m: int
    """Edge count of the graph the samples were drawn from."""

    def surviving(self, t: int) -> np.ndarray:
        """Surviving edge positions of sample ``t``."""
        return self.positions[self.offsets[t]: self.offsets[t + 1]]

    def pack(self, sample_indices) -> tuple[np.ndarray, np.ndarray]:
        """``(offsets, positions)`` of an arbitrary subset of samples.

        The contiguous analogue of calling :meth:`surviving` per
        index: ``positions[offsets[i]:offsets[i + 1]]`` is the
        surviving-edge array of ``sample_indices[i]``.  One pair of
        flat arrays, so a batched consumer (the sketch tree builder's
        worker tasks) ships a whole chunk as two cheap pickles —
        and a memory-mapped pool materialises only the packed window.
        """
        idx = np.asarray(list(sample_indices), dtype=np.int64)
        lengths = self.offsets[idx + 1] - self.offsets[idx]
        offsets = np.zeros(idx.shape[0] + 1, dtype=np.int64)
        np.cumsum(lengths, out=offsets[1:])
        if idx.shape[0] == 0:
            return offsets, np.zeros(0, dtype=np.int64)
        positions = np.concatenate(
            [self.surviving(int(t)) for t in idx]
        )
        return offsets, positions

    def alive_matrix(self, lo: int, hi: int) -> np.ndarray:
        """Boolean ``(hi - lo, m)`` aliveness matrix of a sample slice.

        Materialises only the requested window so callers can stream
        the pool through :func:`reach_counts_from_alive` chunk by
        chunk without ever holding ``theta * m`` bools.
        """
        if not 0 <= lo <= hi <= self.theta:
            raise ValueError(f"bad sample window [{lo}, {hi})")
        rows = np.repeat(
            np.arange(hi - lo, dtype=np.int64),
            np.diff(self.offsets[lo: hi + 1]),
        )
        alive = np.zeros((hi - lo, self.m), dtype=bool)
        alive[rows, self.positions[self.offsets[lo]: self.offsets[hi]]] = True
        return alive

    @property
    def nbytes(self) -> int:
        return int(self.offsets.nbytes + self.positions.nbytes)


@dataclass(frozen=True)
class PoolDeltaReport:
    """What one :meth:`SamplePool.apply_delta` actually changed."""

    touched: np.ndarray
    """Sorted unique ids of samples whose survived-edge set changed —
    exactly the trees a sketch over this pool must rebuild."""
    theta: int
    """Samples materialised when the delta was applied."""
    inserts: int
    deletes: int
    reweights: int

    @property
    def touched_count(self) -> int:
        return int(self.touched.shape[0])


class SamplePool:
    """Growing, optionally disk-backed pool of live-edge samples.

    Parameters
    ----------
    graph:
        Graph (or frozen CSR) whose live-edge distribution is sampled.
    rng:
        Seed / generator for the coin flips.  An **integer** seed also
        keys the on-disk cache; with generator/fresh entropy the pool
        is memory-only unless ``cache_key`` names the stream.
    cache_dir:
        Directory for persisted pools.  Created on demand.  Files are
        ``pool-<fingerprint>.{offsets,positions}.npy`` and are loaded
        memory-mapped.
    cache_key:
        Explicit stream identity for the disk fingerprint, for callers
        that pass a live generator but still want persistence.
    """

    def __init__(
        self,
        graph: DiGraph | CSRGraph,
        rng: RngLike = None,
        cache_dir: str | Path | None = None,
        cache_key: str | None = None,
    ) -> None:
        self.csr = graph if isinstance(graph, CSRGraph) else CSRGraph(graph)
        # edge (u, v)'s coin in sample t is a pure function of
        # (root, u, v, t): a counter-based splitmix64 stream keyed by
        # the stable edge identity.  A pool attached from disk
        # continues bit-identically, any two processes sharing a seed
        # materialise identical pools regardless of growth history,
        # and a graph delta can re-decide exactly the affected edges
        # (same hash, new threshold) without touching any other coin.
        self._root = int(ensure_rng(rng).integers(2**63))
        self._chunk = max(1, _COIN_CELL_BUDGET // max(self.csr.m, 1))
        self.stats = PoolStats()
        self._theta = 0
        self._offsets = np.zeros(1, dtype=np.int64)
        self._positions = np.zeros(0, dtype=np.int64)
        if cache_key is None and isinstance(rng, int):
            cache_key = f"seed{rng}"
        self._cache_key = cache_key
        self._cache_dir = None if cache_dir is None else Path(cache_dir)
        self._cache_paths: tuple[Path, Path] | None = None
        self._cache_digest: str | None = None
        self._rekey()
        if self._cache_paths is not None:
            self._try_attach()

    def _rekey(self) -> None:
        """(Re)derive the disk identity from the current graph content.

        Called at construction and again after every applied delta —
        the fingerprint hashes the live CSR arrays, so a mutated graph
        always maps to a fresh ``pool-<digest>`` pair and can never
        rehydrate a stale pre-delta pool.
        """
        if self._cache_dir is None or self._cache_key is None:
            return
        digest = self._fingerprint(self._cache_key)
        self._cache_digest = digest
        self._cache_paths = (
            self._cache_dir / f"pool-{digest}.offsets.npy",
            self._cache_dir / f"pool-{digest}.positions.npy",
        )

    # ------------------------------------------------------------------
    # public surface
    # ------------------------------------------------------------------
    @property
    def theta(self) -> int:
        """Number of samples currently materialised."""
        return self._theta

    @property
    def nbytes(self) -> int:
        """Resident bytes of the materialised sample arrays."""
        return int(self._offsets.nbytes + self._positions.nbytes)

    @property
    def cache_paths(self) -> tuple[Path, Path] | None:
        """``(offsets, positions)`` paths of the persisted pool, or
        ``None`` for a memory-only pool.  Consumers that derive their
        own persistent artifacts from these samples (the sketch
        index's arena views) anchor their files next to — and key them
        by — the pool's, and worker processes attach the same files
        memory-mapped instead of receiving pickled sample windows."""
        return self._cache_paths

    @property
    def cache_digest(self) -> str | None:
        """Content fingerprint of the persisted pool (graph arrays +
        probabilities + stream key), or ``None`` when memory-only.
        Stable across processes, so derived artifacts keyed by it are
        shareable the same way the pool files are."""
        return self._cache_digest

    def get(self, theta: int) -> SampleBatch:
        """A batch of the pool's first ``theta`` samples.

        Serving prefixes is what makes reuse sound: the first
        ``theta`` samples are i.i.d. live-edge draws regardless of how
        large the pool has grown since.
        """
        if theta <= 0:
            raise ValueError("theta must be positive")
        if theta <= self._theta:
            self.stats.hits += 1
        else:
            self.stats.misses += 1
            with span("pool.generate"):
                self._grow(theta - self._theta)
            self._persist()
        return SampleBatch(
            theta=theta,
            offsets=self._offsets[: theta + 1],
            positions=self._positions[: self._offsets[theta]],
            m=self.csr.m,
        )

    # ------------------------------------------------------------------
    # incremental updates
    # ------------------------------------------------------------------
    def _edge_positions(self, edges) -> np.ndarray:
        """CSR positions of ``(u, v)`` pairs; raises on a missing edge."""
        indptr = self.csr.indptr
        indices = self.csr.indices
        out = np.empty(len(edges), dtype=np.int64)
        for i, (u, v) in enumerate(edges):
            row = indices[indptr[u]: indptr[u + 1]]
            hits = np.nonzero(row == v)[0]
            if hits.shape[0] == 0:
                raise ValueError(f"no edge ({u}, {v}) in the graph")
            out[i] = indptr[u] + hits[0]
        return out

    def apply_delta(self, delta: GraphDelta) -> PoolDeltaReport:
        """Patch the pooled samples for a batch of edge mutations.

        The patched pool is **bit-identical** to regenerating a fresh
        pool (same seed) over the mutated graph: unaffected edges keep
        their coin stream untouched, reweighted edges re-decide the
        *same* per-sample hash against the new threshold, inserted
        edges decide theirs for the first time, and deleted edges drop
        out.  Cost is O(pool nnz + |delta| * theta) — independent of
        the edge count ``m`` that a from-scratch regeneration pays.

        The pool's CSR is swapped for the post-delta layout (deletes
        compact their row, reweights keep their slot, inserts append
        in delta order — exactly ``CSRGraph`` construction order over
        the mutated :class:`~repro.graph.DiGraph`), and a persisted
        pool is re-fingerprinted from the new content and re-saved, so
        a later process building over the mutated graph attaches these
        patched arrays instead of resampling.
        """
        with span("pool.delta"):
            return self._apply_delta(delta)

    def _apply_delta(self, delta: GraphDelta) -> PoolDeltaReport:
        csr = self.csr
        n, m = csr.n, csr.m
        top = delta.max_vertex()
        if top >= n:
            raise ValueError(
                f"vertex {top} out of range for graph with {n} vertices"
            )
        for u, v, _ in delta.inserts:
            row = csr.indices[csr.indptr[u]: csr.indptr[u + 1]]
            if np.any(row == v):
                raise ValueError(
                    f"cannot insert existing edge ({u}, {v}) — use a "
                    "reweight"
                )
        del_pos = self._edge_positions(
            [(u, v) for u, v in delta.deletes]
        )
        rew_pos = self._edge_positions(
            [(u, v) for u, v, _ in delta.reweights]
        )
        n_ins = len(delta.inserts)
        ins_u = np.array(
            [u for u, _, _ in delta.inserts], dtype=np.int64
        )
        ins_v = np.array(
            [v for _, v, _ in delta.inserts], dtype=np.int64
        )
        ins_p = np.array(
            [p for _, _, p in delta.inserts], dtype=np.float64
        )
        rew_p = np.array(
            [p for _, _, p in delta.reweights], dtype=np.float64
        )

        # -- post-delta CSR layout + old -> new position remap --------
        keep = np.ones(m, dtype=bool)
        keep[del_pos] = False
        counts_old = np.diff(csr.indptr)
        del_counts = np.bincount(
            csr.src[del_pos], minlength=n
        ) if del_pos.size else np.zeros(n, dtype=np.int64)
        ins_counts = np.bincount(
            ins_u, minlength=n
        ) if n_ins else np.zeros(n, dtype=np.int64)
        kept_counts = counts_old - del_counts
        new_indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(kept_counts + ins_counts, out=new_indptr[1:])
        prefix = np.zeros(m + 1, dtype=np.int64)
        np.cumsum(keep.astype(np.int64), out=prefix[1:])
        remap = np.full(m, -1, dtype=np.int64)
        kept_j = np.nonzero(keep)[0]
        rows = csr.src[kept_j]
        remap[kept_j] = (
            new_indptr[rows]
            + prefix[kept_j + 1] - 1 - prefix[csr.indptr[rows]]
        )
        # inserts append to their row in delta order
        ins_pos = np.empty(n_ins, dtype=np.int64)
        next_slot = (new_indptr[:-1] + kept_counts).copy()
        for i in range(n_ins):
            u = int(ins_u[i])
            ins_pos[i] = next_slot[u]
            next_slot[u] += 1
        new_m = m - del_pos.size + n_ins
        new_indices = np.empty(new_m, dtype=csr.indices.dtype)
        new_probs = np.empty(new_m, dtype=np.float64)
        new_indices[remap[kept_j]] = csr.indices[kept_j]
        new_probs[remap[kept_j]] = csr.probs[kept_j]
        if rew_pos.size:
            new_probs[remap[rew_pos]] = rew_p
        if n_ins:
            new_indices[ins_pos] = ins_v
            new_probs[ins_pos] = ins_p
        new_csr = CSRGraph.from_arrays(
            new_indptr, new_indices, new_probs
        )

        # -- re-decide exactly the affected coins ---------------------
        theta = self._theta
        offsets = np.asarray(self._offsets)
        positions = np.asarray(self._positions)
        rew_mask = np.zeros(m, dtype=bool)
        rew_mask[rew_pos] = True
        entry_keep = keep[positions] & ~rew_mask[positions]
        sample_ids = np.repeat(
            np.arange(theta, dtype=np.int64),
            np.diff(offsets).astype(np.int64),
        )
        kept_samples = sample_ids[entry_keep]
        kept_newpos = remap[positions[entry_keep]]
        # samples that lose a live deleted edge are touched outright
        deleted_live = sample_ids[~keep[positions]]

        # reweights + inserts: hash once per (edge, sample); the
        # reweighted edges' *old* coins are recomputed the same way
        # instead of scanned out of the pool (same stream, old
        # threshold — bit-identical by construction), so a reweight
        # only touches samples whose survival actually flips
        delta_keys = np.concatenate([
            _edge_keys(
                self._root, csr.src[rew_pos], csr.indices[rew_pos]
            ) if rew_pos.size else np.zeros(0, dtype=np.uint64),
            _edge_keys(self._root, ins_u, ins_v)
            if n_ins else np.zeros(0, dtype=np.uint64),
        ])
        delta_newpos = np.concatenate([
            remap[rew_pos] if rew_pos.size
            else np.zeros(0, dtype=np.int64),
            ins_pos,
        ])
        new_thr, new_sure = _thresholds(
            np.concatenate([rew_p, ins_p])
        )
        # inserts were absent before, so their "old" threshold is 0
        old_thr, old_sure = _thresholds(np.concatenate([
            csr.probs[rew_pos] if rew_pos.size
            else np.zeros(0, dtype=np.float64),
            np.zeros(n_ins, dtype=np.float64),
        ]))
        add_samples = np.zeros(0, dtype=np.int64)
        add_pos = np.zeros(0, dtype=np.int64)
        flipped = np.zeros(0, dtype=np.int64)
        if delta_keys.size and theta:
            counters = _sample_counters(0, theta)
            step = max(1, _COIN_CELL_BUDGET // theta)
            adds_s: list[np.ndarray] = []
            adds_p: list[np.ndarray] = []
            flips: list[np.ndarray] = []
            for lo in range(0, delta_keys.size, step):
                hi = min(lo + step, delta_keys.size)
                h = _mix64(
                    delta_keys[lo:hi, None] + counters[None, :]
                )
                alive = (h < new_thr[lo:hi, None]) | new_sure[
                    lo:hi, None
                ]
                was = (h < old_thr[lo:hi, None]) | old_sure[
                    lo:hi, None
                ]
                e_idx, t_idx = np.nonzero(alive)
                adds_s.append(t_idx.astype(np.int64, copy=False))
                adds_p.append(delta_newpos[lo:hi][e_idx])
                flips.append(
                    np.nonzero(np.any(alive != was, axis=0))[0].astype(
                        np.int64, copy=False
                    )
                )
            add_samples = np.concatenate(adds_s)
            add_pos = np.concatenate(adds_p)
            flipped = np.concatenate(flips)

        report_touched = np.unique(
            np.concatenate([deleted_live, flipped])
        )

        # -- merge kept entries with additions, sorted per sample -----
        # kept entries are already (sample, position)-sorted because
        # the remap is order-preserving; only the additions need a
        # sort, and they are tiny relative to the pool
        if add_samples.size:
            order = np.lexsort((add_pos, add_samples))
            add_samples = add_samples[order]
            add_pos = add_pos[order]
        stride = np.int64(max(new_m, 1))
        kept_keys = kept_samples * stride + kept_newpos
        add_keys = add_samples * stride + add_pos
        total = kept_keys.size + add_keys.size
        new_positions = np.empty(total, dtype=np.int64)
        at_kept = np.arange(kept_keys.size, dtype=np.int64)
        at_kept += np.searchsorted(add_keys, kept_keys, side="left")
        at_add = np.arange(add_keys.size, dtype=np.int64)
        at_add += np.searchsorted(kept_keys, add_keys, side="right")
        new_positions[at_kept] = kept_newpos
        new_positions[at_add] = add_pos
        counts = np.bincount(
            kept_samples, minlength=theta
        ) + np.bincount(add_samples, minlength=theta)
        new_offsets = np.zeros(theta + 1, dtype=np.int64)
        np.cumsum(counts, out=new_offsets[1:])

        # -- swap state and re-key the persisted artifact -------------
        self.csr = new_csr
        self._chunk = max(1, _COIN_CELL_BUDGET // max(new_m, 1))
        self._offsets = new_offsets
        self._positions = new_positions
        self.stats.deltas += 1
        self.stats.delta_touched += int(report_touched.shape[0])
        old_digest = self._cache_digest
        self._rekey()
        if (
            self._cache_paths is not None
            and theta
            and self._cache_digest != old_digest
        ):
            self._persist()
        return PoolDeltaReport(
            touched=report_touched,
            theta=theta,
            inserts=n_ins,
            deletes=int(del_pos.size),
            reweights=int(rew_pos.size),
        )

    # ------------------------------------------------------------------
    # generation
    # ------------------------------------------------------------------
    def _grow(self, extra: int) -> None:
        m = self.csr.m
        chunk = self._chunk
        target = self._theta + extra
        chunks_pos: list[np.ndarray] = [np.asarray(self._positions)]
        chunks_counts: list[np.ndarray] = []
        keys = _edge_keys(self._root, self.csr.src, self.csr.indices)
        thr, sure = _thresholds(self.csr.probs)
        for lo in range(self._theta, target, chunk):
            # one (window, m) hash matrix per step, bounded by the
            # cell budget; sample content is per-(edge, sample) and
            # never depends on the window boundaries
            hi = min(lo + chunk, target)
            if m:
                h = _mix64(
                    keys[None, :] + _sample_counters(lo, hi)[:, None]
                )
                coins = (h < thr) | sure
                rows, pos = np.nonzero(coins)
                counts = np.bincount(rows, minlength=hi - lo)
                chunks_pos.append(pos.astype(np.int64, copy=False))
                chunks_counts.append(counts.astype(np.int64, copy=False))
            else:
                chunks_counts.append(np.zeros(hi - lo, dtype=np.int64))
        counts = np.concatenate(chunks_counts)
        new_offsets = np.empty(self._theta + extra + 1, dtype=np.int64)
        new_offsets[: self._theta + 1] = self._offsets
        np.cumsum(counts, out=new_offsets[self._theta + 1:])
        new_offsets[self._theta + 1:] += self._offsets[self._theta]
        self._offsets = new_offsets
        self._positions = np.concatenate(chunks_pos)
        self._theta += extra
        self.stats.generated += extra

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def _fingerprint(self, cache_key: str) -> str:
        csr = self.csr
        digest = hashlib.sha256()
        digest.update(
            f"{csr.n}:{csr.m}:{_COIN_SCHEME}:{cache_key}".encode()
        )
        digest.update(np.ascontiguousarray(csr.indptr).tobytes())
        digest.update(np.ascontiguousarray(csr.indices).tobytes())
        digest.update(np.ascontiguousarray(csr.probs).tobytes())
        return digest.hexdigest()[:16]

    def _try_attach(self) -> None:
        assert self._cache_paths is not None
        off_path, pos_path = self._cache_paths
        if not (off_path.is_file() and pos_path.is_file()):
            return
        try:
            offsets = np.load(off_path, mmap_mode="r")
            positions = np.load(pos_path, mmap_mode="r")
        except (OSError, ValueError):  # corrupt/partial cache: ignore
            return
        if offsets.ndim != 1 or offsets.shape[0] < 1:
            return
        self._offsets = offsets
        self._positions = positions
        self._theta = offsets.shape[0] - 1
        self.stats.disk_loads += 1

    def _persist(self) -> None:
        if self._cache_paths is None:
            return
        off_path, pos_path = self._cache_paths
        off_path.parent.mkdir(parents=True, exist_ok=True)
        # write-then-rename so concurrent readers never see a torn
        # file; positions land first — old offsets over new positions
        # is always a consistent prefix, the reverse is not
        for path, array in (
            (pos_path, self._positions),
            (off_path, self._offsets),
        ):
            # the tmp name must keep the .npy suffix or np.save appends one
            tmp = path.with_name(path.name[: -len(".npy")] + ".tmp.npy")
            np.save(tmp, np.asarray(array))
            tmp.replace(path)
        self.stats.disk_saves += 1
