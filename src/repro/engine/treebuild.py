"""Batched, array-native construction of per-sample dominator trees.

The sketch estimator's cold path is "one dominator tree per pooled
live-edge sample" (Section V-B3).  Historically each tree build
materialised a Python ``dict`` adjacency of the whole sample — ~``m``
dict operations per sample to reach a subgraph that is usually a tiny
fraction of the graph.  This module is the flat-array replacement:

* :func:`build_sample_tree` cuts one sample's CSR straight out of the
  pooled ``positions`` array with numpy (:func:`~repro.engine.kernels
  .sample_csr`) and runs the array-native Lengauer–Tarjan core on it —
  Python-level work scales with the *reachable* subgraph only;
* :class:`TreeBuilder` batches that over many samples and, when
  asked, fans the batch out across cores through the shared
  worker-pool infrastructure of :mod:`repro.engine.parallel` (the
  same ship-the-CSR-once initializer the parallel spread evaluator
  uses).  The pool is created lazily on the first fan-out and reused
  across builds — a long-lived :class:`~repro.engine.sketch
  .SketchIndex` pays worker startup once, not per rebase — and is
  reaped by :meth:`TreeBuilder.close` (the index's ``close()`` calls
  it).  :func:`build_trees` wraps a throwaway builder around one call
  for one-shot consumers (benchmarks, tests).

Every tree is a pure function of its sample, and the aggregation the
sketch index performs over trees is exact integer arithmetic in
float64, so results are bit-identical for any ``workers`` value — and
bit-identical to the historical per-sample Python path, which is what
lets the refactor keep blocker selections and spread estimates
unchanged at fixed seeds (pinned by ``tests/test_sketch.py`` and the
``bench_sketch_build.py`` identity check).
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from ..dominator import dominator_order_sizes_csr
from ..graph import CSRGraph
from ..native import native_build_trees
from ..obs import span
from .kernels import sample_csr
from .parallel import make_worker_pool, worker_csr, worker_samples
from .pool import SampleBatch

__all__ = [
    "build_sample_tree",
    "build_trees",
    "auto_build_workers",
    "TreeBuilder",
]

# fan out only when the batch is worth a worker pool: below these
# bounds the fork/teardown cost exceeds the Python work being split
_MIN_PARALLEL_TREES = 64
_MIN_PARALLEL_VERTICES = 2048


def auto_build_workers(
    workers: int | None, trees: int, n: int
) -> int:
    """Resolve a ``workers`` request to an effective worker count.

    ``None`` keeps the build serial (the safe default for library
    callers and tiny test graphs); an explicit count is honoured but
    capped at one tree per worker, and collapses to serial when the
    batch is too small for process fan-out to pay for itself.
    """
    if workers is None:
        return 1
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if trees < _MIN_PARALLEL_TREES or n < _MIN_PARALLEL_VERTICES:
        return 1
    return min(workers, trees)


def build_sample_tree(
    csr: CSRGraph,
    positions: np.ndarray,
    seeds: Sequence[int],
    blocked: Iterable[int] = (),
) -> tuple[np.ndarray, np.ndarray]:
    """Dominator preorder and subtree sizes of one live-edge sample.

    ``positions`` are the sample's surviving edge positions; the tree
    is rooted at the virtual super-source (id ``csr.n``) with edges to
    ``seeds``, matching Lemma 1's joint-reachability estimator.
    Returns the ``(order, sizes)`` int64 payload of Algorithm 2.
    """
    indptr, indices = sample_csr(csr, positions, seeds, blocked)
    return dominator_order_sizes_csr(indptr, indices, csr.n)


def _build_packed(
    csr: CSRGraph,
    offsets: np.ndarray,
    positions: np.ndarray,
    seeds: Sequence[int],
    blocked: Iterable[int],
) -> list[tuple[np.ndarray, np.ndarray]]:
    return [
        build_sample_tree(
            csr, positions[offsets[t]: offsets[t + 1]], seeds, blocked
        )
        for t in range(offsets.shape[0] - 1)
    ]


def _build_trees_task(task):
    """Worker-side chunk build: unpack, build, re-pack flat.

    Returns ``(lengths, orders, sizes)`` — per-tree lengths plus the
    concatenated payloads — so one chunk costs one pickle each way.
    """
    offsets, positions, seeds, blocked = task
    trees = _build_packed(worker_csr(), offsets, positions, seeds, blocked)
    lengths = np.asarray([o.shape[0] for o, _ in trees], dtype=np.int64)
    if trees:
        orders = np.concatenate([o for o, _ in trees])
        sizes = np.concatenate([s for _, s in trees])
    else:  # pragma: no cover - chunks are never empty
        orders = sizes = np.zeros(0, dtype=np.int64)
    return lengths, orders, sizes


def _packed_payload(
    csr: CSRGraph,
    offsets: np.ndarray,
    positions: np.ndarray,
    idx: np.ndarray,
    seed_arr: np.ndarray,
    blocked: list,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, bool]:
    """``(lengths, orders, sizes, used_native)`` for one sample range.

    The native-kernel-or-Python core shared by the parent's serial
    path and the sharded worker tasks: tries the compiled batched
    kernel first, falls back to the per-sample Python build.  Both
    paths are bit-identical (each tree is a pure function of its
    sample), so where a range is built — parent, worker, C or
    Python — never changes the payload.
    """
    n = csr.n
    if n > 0:
        mask = np.zeros(n, dtype=np.uint8)
        if blocked:
            mask[np.asarray(blocked, dtype=np.int64)] = 1
        native = native_build_trees(
            n, csr.indptr, csr.indices, positions, offsets, idx,
            seed_arr, mask,
        )
        if native is not None:
            return native + (True,)
    trees = [
        build_sample_tree(
            csr,
            positions[offsets[t]: offsets[t + 1]],
            seed_arr,
            blocked,
        )
        for t in idx
    ]
    lengths = np.asarray(
        [order.shape[0] for order, _ in trees], dtype=np.int64
    )
    orders = np.concatenate([order for order, _ in trees])
    sizes = np.concatenate([sizes for _, sizes in trees])
    return lengths, orders, sizes, False


def _packed_shard_task(task):
    """Worker-side packed shard: one contiguous sample range.

    Two handoff modes: ``"mmap"`` tasks carry only sample indices —
    the worker reads the persisted pool through its own read-only
    memory mapping (:func:`worker_samples`), so the samples are never
    pickled; ``"window"`` tasks fall back to shipping the packed
    sample window inline (memory-only pools).
    """
    if task[0] == "mmap":
        _, idx, seed_arr, blocked, min_theta = task
        offsets, positions = worker_samples(min_theta)
    else:
        _, offsets, positions, seed_arr, blocked = task
        idx = np.arange(offsets.shape[0] - 1, dtype=np.int64)
    return _packed_payload(
        worker_csr(), offsets, positions, idx, seed_arr, list(blocked)
    )


class TreeBuilder:
    """Batched tree construction with a reusable worker pool.

    The batched entry point of the sketch construction pipeline:
    :meth:`build` consumes the pooled sample arrays directly and
    returns trees aligned with ``sample_indices``.  With ``workers``
    > 1 (and a batch large enough to amortise process startup) the
    samples are split into one contiguous chunk per worker; results
    are bit-identical to the serial build because every tree depends
    only on its own sample.

    The worker pool is created lazily on the first fan-out and kept
    for later builds — a greedy loop's rebases and repeated cold view
    builds share it — so owners must :meth:`close` the builder (the
    sketch index ties this to its own ``close()``).
    """

    def __init__(
        self,
        csr: CSRGraph,
        workers: int | None = None,
        sample_paths=None,
    ) -> None:
        self.csr = csr
        self.workers = workers
        # (offsets, positions) .npy files of a persisted SamplePool:
        # when present (and on disk), sharded packed builds hand the
        # workers these paths once and ship only sample indices per
        # task — every worker reads the one read-only mapping instead
        # of receiving pickled sample windows
        self.sample_paths = sample_paths
        self._pool = None
        self._pool_size = 0
        # True when the last build_packed() call ran the native kernel
        # in every shard (observability for tests and bench reports)
        self._packed_native = False

    def build(
        self,
        batch: SampleBatch,
        sample_indices: Sequence[int],
        seeds: Sequence[int],
        blocked: Iterable[int] = (),
    ) -> list[tuple[np.ndarray, np.ndarray]]:
        """One ``(order, sizes)`` dominator payload per requested sample."""
        sample_indices = list(sample_indices)
        blocked = list(blocked)
        effective = auto_build_workers(
            self.workers, len(sample_indices), self.csr.n
        )
        if effective <= 1:
            return [
                build_sample_tree(
                    self.csr, batch.surviving(int(t)), seeds, blocked
                )
                for t in sample_indices
            ]

        chunks = np.array_split(
            np.asarray(sample_indices, dtype=np.int64), effective
        )
        chunks = [chunk for chunk in chunks if chunk.shape[0]]
        tasks = [
            batch.pack(chunk) + (tuple(seeds), blocked)
            for chunk in chunks
        ]
        results = self._ensure_pool(len(tasks)).map(
            _build_trees_task, tasks
        )
        trees: list[tuple[np.ndarray, np.ndarray]] = []
        for lengths, orders, sizes in results:
            bounds = np.zeros(lengths.shape[0] + 1, dtype=np.int64)
            np.cumsum(lengths, out=bounds[1:])
            for t in range(lengths.shape[0]):
                trees.append(
                    (
                        orders[bounds[t]: bounds[t + 1]],
                        sizes[bounds[t]: bounds[t + 1]],
                    )
                )
        return trees

    def build_packed(
        self,
        batch: SampleBatch,
        sample_indices: Sequence[int],
        seeds: Sequence[int],
        blocked: Iterable[int] = (),
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Arena-packable ``(lengths, orders, sizes)`` payload batch.

        The same trees :meth:`build` returns, concatenated back to
        back: sample ``sample_indices[i]`` owns
        ``orders[o[i]:o[i + 1]]`` where ``o`` is the exclusive prefix
        sum of ``lengths``.  This is the shape the arena-backed sketch
        view consumes — one flat write-back instead of ``len(batch)``
        array appends — and the shape the native batched kernel
        (:mod:`repro.native`) emits directly: when the compiled kernel
        is available the whole batch is one C call; otherwise the
        per-sample Python build runs and is concatenated.  Results are
        bit-identical across all three paths (native, serial Python,
        worker fan-out), pinned by the cross-check tests.
        """
        idx = np.asarray(list(sample_indices), dtype=np.int64)
        blocked = list(blocked)
        seed_arr = np.asarray(list(seeds), dtype=np.int64)
        if idx.shape[0] == 0:
            empty = np.zeros(0, dtype=np.int64)
            return empty, empty.copy(), empty.copy()
        with span("sketch.treebuild"):
            effective = auto_build_workers(
                self.workers, idx.shape[0], self.csr.n
            )
            if effective > 1:
                return self._build_packed_sharded(
                    batch, idx, seed_arr, blocked, effective
                )
            lengths, orders, sizes, used_native = _packed_payload(
                self.csr, batch.offsets, batch.positions, idx,
                seed_arr, blocked,
            )
            self._packed_native = used_native
            return lengths, orders, sizes

    def _build_packed_sharded(
        self,
        batch: SampleBatch,
        idx: np.ndarray,
        seed_arr: np.ndarray,
        blocked: list,
        effective: int,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Theta sharded across builder processes, arena-order output.

        Each worker builds one contiguous range of the requested
        samples into its own packed segment (running the native kernel
        when it compiles there — the shared object cache is
        cross-process); the parent concatenates segments in shard
        order, which is exactly the offset fix-up the arena layout
        needs: lengths/orders/sizes are position-aligned with ``idx``
        regardless of which process built what.  Workers read the
        samples through a shared read-only mmap of the persisted pool
        when available, falling back to pickled packed windows.
        """
        chunks = [
            chunk
            for chunk in np.array_split(idx, effective)
            if chunk.shape[0]
        ]
        if self._sample_files_ready():
            min_theta = int(idx.max()) + 1
            tasks = [
                ("mmap", chunk, seed_arr, blocked, min_theta)
                for chunk in chunks
            ]
        else:
            tasks = [
                ("window",) + batch.pack(chunk) + (seed_arr, blocked)
                for chunk in chunks
            ]
        results = self._ensure_pool(len(tasks)).map(
            _packed_shard_task, tasks
        )
        self._packed_native = all(native for *_, native in results)
        lengths = np.concatenate([r[0] for r in results])
        orders = np.concatenate([r[1] for r in results])
        sizes = np.concatenate([r[2] for r in results])
        return lengths, orders, sizes

    def _sample_files_ready(self) -> bool:
        if self.sample_paths is None:
            return False
        off_path, pos_path = self.sample_paths
        return off_path.is_file() and pos_path.is_file()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def _ensure_pool(self, workers: int):
        # a pool with spare workers serves a smaller task batch fine;
        # only grow (never shrink) so rebases after a cold build reuse
        # the cold build's pool
        if self._pool is None or self._pool_size < workers:
            self.close()
            self._pool = make_worker_pool(
                self.csr, workers, sample_paths=self.sample_paths
            )
            self._pool_size = workers
        return self._pool

    def close(self) -> None:
        """Terminate the worker pool (idempotent)."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None
            self._pool_size = 0

    def __enter__(self) -> "TreeBuilder":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter teardown
        try:
            self.close()
        except Exception:
            pass


def build_trees(
    csr: CSRGraph,
    batch: SampleBatch,
    sample_indices: Sequence[int],
    seeds: Sequence[int],
    blocked: Iterable[int] = (),
    workers: int | None = None,
) -> list[tuple[np.ndarray, np.ndarray]]:
    """One-shot :meth:`TreeBuilder.build` with a throwaway pool.

    Convenience for single-build consumers (benchmarks, tests, ad-hoc
    scripts); anything building repeatedly over the same graph should
    hold a :class:`TreeBuilder` to reuse its worker pool.
    """
    with TreeBuilder(csr, workers=workers) as builder:
        return builder.build(batch, sample_indices, seeds, blocked)
