"""Sampling wall-clock profiler: collapsed stacks, stdlib only.

The histograms and span trees of :mod:`repro.obs` answer *how long*
a request took and *which phase* took it — but once the service
saturates, the question becomes *where the interpreter actually
spends its wall-clock* across every thread at once, including time
the span instrumentation never wraps (lock waits, socket reads, numpy
kernels).  This module is the third observability layer: a daemon
thread that wakes ``hz`` times per second, walks
``sys._current_frames()`` (every live thread's current Python frame,
one C-level dict copy — no tracing hooks, no per-call overhead), and
aggregates each thread's stack into *collapsed-stack* counts::

    MainThread;serve;handle;_op_spread;expected_spread_many 412

one line per distinct stack, trailing integer = samples observed in
it — exactly the format ``flamegraph.pl`` and speedscope ingest, so a
dump flows straight into a flamegraph without translation.

Because the sampler only *observes* frames between bytecodes, the
profiled process pays nothing per call; the whole cost is the walk
itself, ``hz`` times a second (CI asserts the warm-query p50 moves
<5% at the default rate via ``bench_service_saturation.py``).  The
default rate is a prime-ish 67 Hz so sampling never phase-locks with
millisecond-periodic work and silently over- or under-counts it.

Surfaces:

* library — ``SamplingProfiler(hz=...)`` with ``start/stop/
  collapsed/stats`` (attachable to any process);
* service — the ``profile`` op (``start``/``stop``/``dump``/
  ``status``) on a running server, plus ``repro-imin serve
  --profile-hz`` to sample from boot;
* CLI — ``repro-imin profile`` drives the op against a live server
  and writes the collapsed file locally.

Sampler health is itself metered: ``repro_profile_samples_total``,
``repro_profile_overruns_total`` (ticks that took longer than the
sampling interval — the signal that ``hz`` is set too high for the
machine) and the ``repro_profile_active`` 0/1 gauge land in the
shared registry.
"""

from __future__ import annotations

import sys
import threading
import time
from collections import Counter as _TallyCounter

from .metrics import global_registry, MetricsRegistry

__all__ = [
    "DEFAULT_HZ",
    "SamplingProfiler",
]

DEFAULT_HZ = 67.0
"""Default sampling rate; prime-ish so it never phase-locks with
millisecond-periodic request work."""

_MAX_HZ = 1000.0
_MAX_DEPTH = 128  # frames kept per stack; deeper tails are truncated


def _frame_label(frame) -> str:
    """One collapsed-stack frame: ``module.qualname``.

    Module over filename keeps lines short and diff-stable across
    checkouts; the code object's qualname disambiguates methods and
    nested functions within it.
    """
    code = frame.f_code
    module = frame.f_globals.get("__name__", "?")
    name = getattr(code, "co_qualname", code.co_name)
    return f"{module}.{name}"


class SamplingProfiler:
    """Walk every thread's stack ``hz`` times/sec; tally collapsed stacks.

    ``start()`` spawns the daemon sampler thread; ``stop()`` joins it
    and freezes the aggregate, which ``collapsed()`` renders (callable
    while running too — the tally is lock-guarded).  One instance is
    restartable: a later ``start()`` keeps accumulating unless
    ``reset()`` is called in between.
    """

    def __init__(
        self,
        hz: float = DEFAULT_HZ,
        registry: MetricsRegistry | None = None,
    ) -> None:
        if not hz > 0 or hz > _MAX_HZ:
            raise ValueError(
                f"hz must be in (0, {_MAX_HZ:g}], got {hz!r}"
            )
        self.hz = float(hz)
        self._interval = 1.0 / self.hz
        self._lock = threading.Lock()
        self._tally: _TallyCounter = _TallyCounter()
        self._samples = 0  # thread-stacks observed
        self._ticks = 0  # sampler wake-ups
        self._overruns = 0  # ticks slower than the interval
        self._active_seconds = 0.0  # summed across start/stop windows
        self._started_at: float | None = None
        self._thread: threading.Thread | None = None
        self._stop_event = threading.Event()
        metrics = registry if registry is not None else global_registry()
        self._m_samples = metrics.counter(
            "repro_profile_samples_total",
            "Thread-stack samples aggregated by the sampling profiler",
        )
        self._m_overruns = metrics.counter(
            "repro_profile_overruns_total",
            "Profiler ticks that took longer than the sampling "
            "interval (hz too high for this machine)",
        )
        self._m_active = metrics.gauge(
            "repro_profile_active",
            "1 while the sampling profiler is running, else 0",
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def active(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> None:
        """Begin sampling (no-op if already running)."""
        with self._lock:
            if self._thread is not None and self._thread.is_alive():
                return
            self._stop_event = threading.Event()
            self._started_at = time.perf_counter()
            self._thread = threading.Thread(
                target=self._run,
                args=(self._stop_event,),
                name="repro-profiler",
                daemon=True,
            )
            self._thread.start()
        self._m_active.set(1)

    def stop(self) -> dict[str, object]:
        """Stop sampling and return :meth:`stats`; the aggregate stays
        readable (and resumable) afterwards."""
        with self._lock:
            thread, self._thread = self._thread, None
            self._stop_event.set()
            if self._started_at is not None:
                self._active_seconds += (
                    time.perf_counter() - self._started_at
                )
                self._started_at = None
        if thread is not None:
            thread.join(timeout=5)
        self._m_active.set(0)
        return self.stats()

    def reset(self) -> None:
        """Drop the aggregate (tally and counters); keeps running."""
        with self._lock:
            self._tally.clear()
            self._samples = 0
            self._ticks = 0
            self._overruns = 0
            self._active_seconds = 0.0
            if self._started_at is not None:
                self._started_at = time.perf_counter()

    def __enter__(self) -> "SamplingProfiler":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # sampling loop
    # ------------------------------------------------------------------
    def _run(self, stop_event: threading.Event) -> None:
        own_id = threading.get_ident()
        next_tick = time.perf_counter()
        while not stop_event.wait(
            max(0.0, next_tick - time.perf_counter())
        ):
            next_tick += self._interval
            started = time.perf_counter()
            self._sample_once(own_id)
            if time.perf_counter() - started > self._interval:
                with self._lock:
                    self._overruns += 1
                self._m_overruns.inc()
                # resynchronise instead of bursting to catch up: a
                # burst would oversample whatever runs right after a
                # slow tick
                next_tick = time.perf_counter() + self._interval

    def _sample_once(self, own_id: int) -> None:
        names = {
            t.ident: t.name for t in threading.enumerate()
        }
        frames = sys._current_frames()
        observed = 0
        stacks: list[tuple[str, ...]] = []
        for thread_id, frame in frames.items():
            if thread_id == own_id:
                continue  # the sampler never profiles itself
            stack: list[str] = [
                names.get(thread_id, f"thread-{thread_id}")
            ]
            depth = 0
            # walk leaf -> root, then reverse into root -> leaf order
            leafward: list[str] = []
            while frame is not None and depth < _MAX_DEPTH:
                leafward.append(_frame_label(frame))
                frame = frame.f_back
                depth += 1
            stack.extend(reversed(leafward))
            stacks.append(tuple(stack))
            observed += 1
        del frames  # drop frame references promptly
        with self._lock:
            self._ticks += 1
            self._samples += observed
            for stack in stacks:
                self._tally[stack] += 1
        if observed:
            self._m_samples.inc(observed)

    # ------------------------------------------------------------------
    # output
    # ------------------------------------------------------------------
    def collapsed(self, limit: int | None = None) -> str:
        """The aggregate in collapsed-stack format, hottest first.

        ``frame;frame;...;frame count`` per line — pipe the dump into
        ``flamegraph.pl`` or load it in speedscope as-is.  ``limit``
        keeps only the ``limit`` hottest stacks (for embedding in JSON
        reports).
        """
        with self._lock:
            entries = self._tally.most_common(limit)
        return "\n".join(
            f"{';'.join(stack)} {count}" for stack, count in entries
        )

    def stats(self) -> dict[str, object]:
        """Sampler health and volume (what the ``profile`` op returns
        alongside the dump)."""
        with self._lock:
            running_for = (
                time.perf_counter() - self._started_at
                if self._started_at is not None
                else 0.0
            )
            return {
                "active": self._thread is not None
                and self._thread.is_alive(),
                "hz": self.hz,
                "samples": self._samples,
                "ticks": self._ticks,
                "overruns": self._overruns,
                "distinct_stacks": len(self._tally),
                "duration_seconds": round(
                    self._active_seconds + running_for, 3
                ),
            }
