"""Prometheus text-format (0.0.4) exposition of a metrics registry.

No third-party client library: the format is a stable, line-oriented
contract (``# HELP`` / ``# TYPE`` headers, one ``name{labels} value``
sample per line, histograms as cumulative ``_bucket`` series plus
``_sum``/``_count``) and emitting it directly keeps the serving layer
stdlib-only.  The encoder consumes the plain-data output of
:meth:`repro.obs.metrics.MetricsRegistry.collect`, so it never holds a
metric lock while rendering.

Golden-tested in ``tests/test_obs.py`` — the output bytes are part of
the ops contract (scrapers parse them), not an implementation detail.
"""

from __future__ import annotations

from typing import Sequence

from .metrics import MetricsRegistry

__all__ = ["CONTENT_TYPE", "merge_expositions", "render_text"]

CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\")
        .replace("\n", "\\n")
        .replace('"', '\\"')
    )


def _format_value(value: float) -> str:
    if isinstance(value, bool):  # pragma: no cover - defensive
        return "1" if value else "0"
    number = float(value)
    if number != number:  # NaN
        return "NaN"
    if number in (float("inf"), float("-inf")):
        return "+Inf" if number > 0 else "-Inf"
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def _tag_sample(line: str, label: str, tag: str) -> str:
    """One exposition sample line with ``label="tag"`` injected first.

    Works on both sample shapes (``name{a="b"} 1`` and ``name 1``);
    the metric value is whatever follows the last space, per the
    0.0.4 line grammar."""
    body, _, value = line.rpartition(" ")
    pair = f'{label}="{_escape_label_value(tag)}"'
    if body.endswith("}"):
        name, _, labels = body.partition("{")
        labels = labels[:-1]
        if f'{label}="' in labels:
            # the process already self-labelled (build_info does);
            # its own value wins over the aggregator's tag
            return line
        joined = f"{pair},{labels}" if labels else pair
        return f"{name}{{{joined}}} {value}"
    return f"{body}{{{pair}}} {value}"


def merge_expositions(
    parts: Sequence[tuple[str, str]], label: str = "worker"
) -> str:
    """Fold several processes' exposition pages into one.

    ``parts`` is ``(tag, exposition_text)`` per process; every sample
    line gains ``label="tag"`` as its first label so same-named series
    from different processes stay distinct.  ``# HELP`` / ``# TYPE``
    headers are deduplicated first-wins and each family's samples are
    grouped under one header block (Prometheus rejects pages that
    repeat a TYPE header), preserving first-seen family order.  This
    is how the sharded front end serves a single scrape page covering
    the listener and every shard worker.
    """
    help_lines: dict[str, str] = {}
    type_lines: dict[str, str] = {}
    samples: dict[str, list[str]] = {}
    order: list[str] = []
    for tag, text in parts:
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            if line.startswith("# HELP ") or line.startswith("# TYPE "):
                kind, _, rest = line[2:].partition(" ")
                name = rest.split(" ", 1)[0]
                target = help_lines if kind == "HELP" else type_lines
                target.setdefault(name, line)
            elif line.startswith("#"):
                continue
            else:
                name = line.split("{", 1)[0].split(" ", 1)[0]
                # histogram series (_bucket/_sum/_count) file under
                # their family so they stay inside its header block
                family = name
                for suffix in ("_bucket", "_sum", "_count"):
                    if name.endswith(suffix) and (
                        name[: -len(suffix)] in type_lines
                    ):
                        family = name[: -len(suffix)]
                        break
                if family not in samples:
                    samples[family] = []
                    order.append(family)
                samples[family].append(_tag_sample(line, label, tag))
    lines: list[str] = []
    for family in order:
        if family in help_lines:
            lines.append(help_lines[family])
        if family in type_lines:
            lines.append(type_lines[family])
        lines.extend(samples[family])
    return "\n".join(lines) + "\n" if lines else ""


def render_text(registry: MetricsRegistry) -> str:
    """The registry's current state as Prometheus exposition text."""
    lines: list[str] = []
    for family in registry.collect():
        name, kind = family["name"], family["kind"]
        if family["help"]:
            lines.append(f"# HELP {name} {_escape_help(family['help'])}")
        lines.append(f"# TYPE {name} {kind}")
        for label_names, label_values, suffix, value in family["samples"]:
            if label_names:
                labels = ",".join(
                    f'{label}="{_escape_label_value(str(v))}"'
                    for label, v in zip(label_names, label_values)
                )
                lines.append(
                    f"{name}{suffix}{{{labels}}} {_format_value(value)}"
                )
            else:
                lines.append(f"{name}{suffix} {_format_value(value)}")
    return "\n".join(lines) + "\n" if lines else ""
