"""Prometheus text-format (0.0.4) exposition of a metrics registry.

No third-party client library: the format is a stable, line-oriented
contract (``# HELP`` / ``# TYPE`` headers, one ``name{labels} value``
sample per line, histograms as cumulative ``_bucket`` series plus
``_sum``/``_count``) and emitting it directly keeps the serving layer
stdlib-only.  The encoder consumes the plain-data output of
:meth:`repro.obs.metrics.MetricsRegistry.collect`, so it never holds a
metric lock while rendering.

Golden-tested in ``tests/test_obs.py`` — the output bytes are part of
the ops contract (scrapers parse them), not an implementation detail.
"""

from __future__ import annotations

from .metrics import MetricsRegistry

__all__ = ["CONTENT_TYPE", "render_text"]

CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\")
        .replace("\n", "\\n")
        .replace('"', '\\"')
    )


def _format_value(value: float) -> str:
    if isinstance(value, bool):  # pragma: no cover - defensive
        return "1" if value else "0"
    number = float(value)
    if number != number:  # NaN
        return "NaN"
    if number in (float("inf"), float("-inf")):
        return "+Inf" if number > 0 else "-Inf"
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def render_text(registry: MetricsRegistry) -> str:
    """The registry's current state as Prometheus exposition text."""
    lines: list[str] = []
    for family in registry.collect():
        name, kind = family["name"], family["kind"]
        if family["help"]:
            lines.append(f"# HELP {name} {_escape_help(family['help'])}")
        lines.append(f"# TYPE {name} {kind}")
        for label_names, label_values, suffix, value in family["samples"]:
            if label_names:
                labels = ",".join(
                    f'{label}="{_escape_label_value(str(v))}"'
                    for label, v in zip(label_names, label_values)
                )
                lines.append(
                    f"{name}{suffix}{{{labels}}} {_format_value(value)}"
                )
            else:
                lines.append(f"{name}{suffix} {_format_value(value)}")
    return "\n".join(lines) + "\n" if lines else ""
