"""Thread-safe metrics registry: counters, gauges, histograms.

The engine and the serving layer already count things —
:class:`~repro.engine.sketch.SketchStats`,
:class:`~repro.service.cache.CacheStats`,
:class:`~repro.engine.pool.PoolStats` all carry plain-int attributes
mutated on the hot paths — but each lives on its own object and is
only visible to whoever holds a reference.  This module is the shared
surface those numbers re-register into:

* :class:`MetricsRegistry` owns named metric *families* (a family is
  one metric name plus a fixed tuple of label names; each distinct
  label-value tuple is a *child* with its own value).  Families are
  get-or-create: instrumented library code asks for
  ``registry.counter("repro_x_total", ...)`` every time and always
  receives the same object, so instrumentation never needs set-up
  ordering.
* :class:`Counter` / :class:`Gauge` / :class:`Histogram` children
  take a lock per update — ``value += 1`` on a Python attribute is
  *not* atomic across bytecodes, and the whole point of these counters
  is to stay exact under the concurrent load the service exists to
  measure (pinned by the N-thread tests).
* **Callback collectors** (:meth:`MetricsRegistry.register_callback`)
  are read at collection time — how the pre-existing stats dataclasses
  join the registry without changing their attribute API: each
  dataclass instance enrols itself in a per-kind
  :class:`weakref.WeakSet` (:func:`track`) and one callback sums an
  attribute across all live instances.  Dead artifacts fall out of
  the sums automatically when they are garbage-collected.

Rendering to Prometheus text lives in :mod:`repro.obs.exposition`;
the process-wide default registry (plus the standard collectors over
the tracked stats objects) in :func:`global_registry`.
"""

from __future__ import annotations

import bisect
import os
import platform
import threading
import weakref
from typing import Callable, Iterable, Mapping, Sequence

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "global_registry",
    "install_build_info",
    "install_standard_collectors",
    "package_version",
    "track",
    "tracked",
]

# latencies from ~100us service hits to ~30s cold builds; seconds, per
# Prometheus convention
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)

_KINDS = ("counter", "gauge", "histogram")


class _Child:
    """One (family, label values) time series."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class _CounterChild(_Child):
    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount


class _GaugeChild(_Child):
    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount


class _HistogramChild:
    """Fixed cumulative buckets + sum + count, exact under threads."""

    __slots__ = ("_lock", "bounds", "counts", "sum", "count")

    def __init__(self, bounds: tuple[float, ...]) -> None:
        self._lock = threading.Lock()
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # last slot = +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        index = bisect.bisect_left(self.bounds, value)
        with self._lock:
            self.counts[index] += 1
            self.sum += value
            self.count += 1

    def snapshot(self) -> tuple[list[int], float, int]:
        """Cumulative bucket counts (incl. +Inf), sum, count — one
        consistent view (``count == counts[-1]`` always holds)."""
        with self._lock:
            counts = list(self.counts)
            total_sum, total = self.sum, self.count
        cumulative: list[int] = []
        running = 0
        for c in counts:
            running += c
            cumulative.append(running)
        return cumulative, total_sum, total


class _Family:
    """One metric name: label schema, help text, children."""

    def __init__(
        self,
        name: str,
        help_text: str,
        kind: str,
        label_names: tuple[str, ...],
        buckets: tuple[float, ...] | None = None,
    ) -> None:
        self.name = name
        self.help = help_text
        self.kind = kind
        self.label_names = label_names
        self.buckets = buckets
        self._lock = threading.Lock()
        self._children: dict[tuple[str, ...], object] = {}
        if not label_names:
            self._default = self._make_child()
            self._children[()] = self._default
        else:
            self._default = None

    def _make_child(self):
        if self.kind == "counter":
            return _CounterChild()
        if self.kind == "gauge":
            return _GaugeChild()
        return _HistogramChild(self.buckets or DEFAULT_BUCKETS)

    def labels(self, *values: str):
        """The child for one label-value tuple (created on first use)."""
        if len(values) != len(self.label_names):
            raise ValueError(
                f"{self.name} takes {len(self.label_names)} label(s) "
                f"{self.label_names}, got {len(values)}"
            )
        key = tuple(str(v) for v in values)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._make_child()
                self._children[key] = child
            return child

    def children(self) -> list[tuple[tuple[str, ...], object]]:
        with self._lock:
            return list(self._children.items())

    # unlabeled families proxy the default child so call sites read
    # ``registry.counter(...).inc()`` without a labels() hop
    def inc(self, amount: float = 1.0) -> None:
        self._require_unlabeled().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._require_unlabeled().dec(amount)

    def set(self, value: float) -> None:
        self._require_unlabeled().set(value)

    def observe(self, value: float) -> None:
        self._require_unlabeled().observe(value)

    @property
    def value(self) -> float:
        return self._require_unlabeled().value

    def _require_unlabeled(self):
        if self._default is None:
            raise ValueError(
                f"{self.name} is labeled {self.label_names}; "
                "use .labels(...)"
            )
        return self._default


Counter = _Family
Gauge = _Family
Histogram = _Family


class _Callback:
    """A collection-time metric: value(s) computed by a function.

    ``fn`` returns either a number (one unlabeled sample) or a mapping
    of label-value tuples to numbers (one sample per entry, for
    callbacks that fan out over a dimension, e.g. per-op counts).
    """

    def __init__(
        self,
        name: str,
        help_text: str,
        kind: str,
        fn: Callable[[], "float | Mapping[tuple[str, ...], float]"],
        label_names: tuple[str, ...] = (),
    ) -> None:
        self.name = name
        self.help = help_text
        self.kind = kind
        self.fn = fn
        self.label_names = label_names


class MetricsRegistry:
    """Named metric families plus callback collectors, all thread-safe.

    One registry per scrape surface; :func:`global_registry` is the
    process default every instrumented module records into.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: dict[str, _Family] = {}
        self._callbacks: dict[str, _Callback] = {}
        self._installed_collectors = False

    # ------------------------------------------------------------------
    # family creation (get-or-create, kind-checked)
    # ------------------------------------------------------------------
    def _family(
        self,
        name: str,
        help_text: str,
        kind: str,
        labels: Sequence[str],
        buckets: Iterable[float] | None = None,
    ) -> _Family:
        _validate_name(name)
        label_names = tuple(labels)
        with self._lock:
            family = self._families.get(name)
            if family is None:
                if name in self._callbacks:
                    raise ValueError(
                        f"{name} is already a callback collector"
                    )
                family = _Family(
                    name,
                    help_text,
                    kind,
                    label_names,
                    tuple(buckets) if buckets is not None else None,
                )
                self._families[name] = family
            elif family.kind != kind or family.label_names != label_names:
                raise ValueError(
                    f"{name} already registered as {family.kind}"
                    f"{family.label_names}; cannot re-register as "
                    f"{kind}{label_names}"
                )
            return family

    def counter(
        self, name: str, help_text: str = "", labels: Sequence[str] = ()
    ) -> Counter:
        return self._family(name, help_text, "counter", labels)

    def gauge(
        self, name: str, help_text: str = "", labels: Sequence[str] = ()
    ) -> Gauge:
        return self._family(name, help_text, "gauge", labels)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labels: Sequence[str] = (),
        buckets: Iterable[float] | None = None,
    ) -> Histogram:
        bounds = tuple(buckets) if buckets is not None else DEFAULT_BUCKETS
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ValueError("buckets must be sorted and distinct")
        return self._family(name, help_text, "histogram", labels, bounds)

    def register_callback(
        self,
        name: str,
        help_text: str,
        fn: Callable[[], "float | Mapping[tuple[str, ...], float]"],
        kind: str = "gauge",
        labels: Sequence[str] = (),
    ) -> None:
        """Register a collection-time metric (idempotent by name)."""
        _validate_name(name)
        if kind not in ("counter", "gauge"):
            raise ValueError("callback collectors are counters or gauges")
        with self._lock:
            if name in self._families:
                raise ValueError(f"{name} is already a metric family")
            self._callbacks[name] = _Callback(
                name, help_text, kind, fn, tuple(labels)
            )

    # ------------------------------------------------------------------
    # collection
    # ------------------------------------------------------------------
    def collect(self) -> list[dict]:
        """Every family and callback as plain data, for exposition.

        Each entry: ``{"name", "help", "kind", "samples"}`` where
        samples are ``(label_names, label_values, suffix, value)``.
        """
        with self._lock:
            families = list(self._families.values())
            callbacks = list(self._callbacks.values())
        out: list[dict] = []
        for family in families:
            samples: list[tuple] = []
            for label_values, child in family.children():
                if family.kind == "histogram":
                    cumulative, total_sum, count = child.snapshot()
                    for bound, cum in zip(family.buckets, cumulative):
                        samples.append(
                            (
                                family.label_names + ("le",),
                                label_values + (_format_bound(bound),),
                                "_bucket",
                                cum,
                            )
                        )
                    samples.append(
                        (
                            family.label_names + ("le",),
                            label_values + ("+Inf",),
                            "_bucket",
                            cumulative[-1],
                        )
                    )
                    samples.append(
                        (
                            family.label_names,
                            label_values,
                            "_sum",
                            total_sum,
                        )
                    )
                    samples.append(
                        (family.label_names, label_values, "_count", count)
                    )
                else:
                    samples.append(
                        (family.label_names, label_values, "", child.value)
                    )
            out.append(
                {
                    "name": family.name,
                    "help": family.help,
                    "kind": family.kind,
                    "samples": samples,
                }
            )
        for callback in callbacks:
            value = callback.fn()
            if isinstance(value, Mapping):
                samples = [
                    (
                        callback.label_names,
                        tuple(str(part) for part in key),
                        "",
                        v,
                    )
                    for key, v in sorted(value.items())
                ]
            else:
                samples = [((), (), "", float(value))]
            out.append(
                {
                    "name": callback.name,
                    "help": callback.help,
                    "kind": callback.kind,
                    "samples": samples,
                }
            )
        out.sort(key=lambda entry: entry["name"])
        return out

    def render(self) -> str:
        """Prometheus text format 0.0.4 (see
        :func:`repro.obs.exposition.render_text`)."""
        from .exposition import render_text

        return render_text(self)


def _validate_name(name: str) -> None:
    if not name or not all(
        c.isalnum() or c in "_:" for c in name
    ) or name[0].isdigit():
        raise ValueError(f"invalid metric name {name!r}")


def _format_bound(bound: float) -> str:
    # Prometheus renders integral bounds without the trailing .0
    if bound == int(bound):
        return str(int(bound))
    return repr(bound)


# ----------------------------------------------------------------------
# tracked stats objects: how the pre-existing dataclasses join in
# ----------------------------------------------------------------------
# id-keyed weak references (not a WeakSet: the stats dataclasses
# generate __eq__ and are therefore unhashable)
_TRACKED: dict[str, dict[int, "weakref.ref"]] = {}
_TRACKED_LOCK = threading.Lock()


def track(kind: str, obj: object) -> None:
    """Enrol a stats object under ``kind`` for callback collectors.

    Holding only a weak reference: a dropped artifact leaves the sums
    the moment the collector garbage-collects it, so byte gauges track
    residency rather than history.  No weakref *callback* is
    registered — a callback would need ``_TRACKED_LOCK``, and the GC
    can fire it on a thread already holding that lock (any allocation
    inside :func:`tracked` is a trigger point), which self-deadlocks a
    non-reentrant lock.  Dead references are pruned lazily on read
    instead.
    """
    with _TRACKED_LOCK:
        _TRACKED.setdefault(kind, {})[id(obj)] = weakref.ref(obj)


def tracked(kind: str) -> list[object]:
    """The live tracked objects of one kind (a snapshot).

    Prunes entries whose referent has been collected — the only place
    the registry shrinks, always under the lock, never from a GC
    callback.
    """
    with _TRACKED_LOCK:
        bucket = _TRACKED.get(kind)
        if not bucket:
            return []
        live = []
        dead = []
        for key, ref in bucket.items():
            obj = ref()
            if obj is None:
                dead.append(key)
            else:
                live.append(obj)
        for key in dead:
            del bucket[key]
    return live


def _sum_attr(kind: str, attr: str) -> Callable[[], float]:
    def collect() -> float:
        return float(sum(getattr(o, attr, 0) for o in tracked(kind)))

    return collect


# (metric name, help, tracked kind, attribute, callback kind)
_STANDARD_COLLECTORS: tuple[tuple[str, str, str, str, str], ...] = (
    # the PR 4-5 byte gauges (SketchStats)
    ("repro_sketch_tree_bytes",
     "Resident bytes of cached per-sample tree state across live "
     "sketch indexes", "sketch", "tree_bytes", "gauge"),
    ("repro_sketch_arena_bytes",
     "Resident bytes of pooled tree arenas (arena layout)",
     "sketch", "arena_bytes", "gauge"),
    ("repro_sketch_postings_bytes",
     "Resident bytes of inverted membership indexes (arena layout)",
     "sketch", "postings_bytes", "gauge"),
    ("repro_sketch_queries_total",
     "Spread / marginal-gain queries answered by sketch indexes",
     "sketch", "queries", "counter"),
    ("repro_sketch_rebases_total",
     "Blocker-set transitions that re-derived at least one tree",
     "sketch", "rebases", "counter"),
    ("repro_sketch_trees_built_total",
     "Dominator trees constructed (cold builds + rebases)",
     "sketch", "trees_built", "counter"),
    ("repro_sketch_samples_skipped_total",
     "Samples left untouched by rebases (the incremental win)",
     "sketch", "samples_skipped", "counter"),
    ("repro_sketch_view_rehydrations_total",
     "Arena views attached memory-mapped from persisted artifacts "
     "instead of cold-built",
     "sketch", "rehydrations", "counter"),
    ("repro_sketch_view_persists_total",
     "Arena views serialized to the artifact cache directory",
     "sketch", "persists", "counter"),
    # artifact-cache counters (CacheStats)
    ("repro_cache_hits_total", "Artifact-cache hits",
     "cache", "hits", "counter"),
    ("repro_cache_misses_total", "Artifact-cache misses",
     "cache", "misses", "counter"),
    ("repro_cache_builds_total", "Artifact builds",
     "cache", "builds", "counter"),
    ("repro_cache_evictions_total", "Artifact evictions (LRU)",
     "cache", "evictions", "counter"),
    ("repro_cache_rehydrations_total",
     "Builds that re-attached a persisted pool instead of sampling",
     "cache", "rehydrations", "counter"),
    # sample-pool counters (PoolStats)
    ("repro_pool_hits_total",
     "Sample-pool requests served from resident samples",
     "pool", "hits", "counter"),
    ("repro_pool_misses_total",
     "Sample-pool requests that had to grow the pool",
     "pool", "misses", "counter"),
    ("repro_pool_samples_generated_total",
     "Live-edge samples drawn", "pool", "generated", "counter"),
    ("repro_pool_disk_loads_total",
     "Pools rehydrated from a disk snapshot",
     "pool", "disk_loads", "counter"),
    ("repro_pool_disk_saves_total",
     "Pool snapshots persisted to disk",
     "pool", "disk_saves", "counter"),
)


def install_standard_collectors(registry: MetricsRegistry) -> None:
    """Register the callback collectors over the tracked stats objects
    (idempotent per registry) — the re-registration bridge that gives
    every pre-existing stats dataclass a Prometheus presence while its
    attribute API stays exactly as it was."""
    with registry._lock:
        if registry._installed_collectors:
            return
        registry._installed_collectors = True
    for name, help_text, kind, attr, cb_kind in _STANDARD_COLLECTORS:
        registry.register_callback(
            name, help_text, _sum_attr(kind, attr), kind=cb_kind
        )


def package_version() -> str:
    """The installed distribution version (``"unknown"`` from a plain
    source checkout)."""
    try:
        from importlib.metadata import version

        return version("repro-imin")
    except Exception:  # noqa: BLE001 - not installed (src checkout)
        return "unknown"


def install_build_info(
    registry: MetricsRegistry, worker: str = "main"
) -> _GaugeChild:
    """Export the constant ``repro_build_info`` gauge (value 1).

    The label set — package version, Python version, pid and a
    ``worker`` role tag — is what lets a scrape of the sharded serving
    topology tell the listener's series apart from each shard's after
    :func:`repro.obs.exposition.merge_expositions` folds them into one
    page.  Idempotent per (registry, labels)."""
    family = registry.gauge(
        "repro_build_info",
        "Constant 1; build/runtime identity in the labels",
        labels=("version", "python", "pid", "worker"),
    )
    child = family.labels(
        package_version(),
        platform.python_version(),
        str(os.getpid()),
        worker,
    )
    child.set(1.0)
    return child


_GLOBAL: MetricsRegistry | None = None
_GLOBAL_LOCK = threading.Lock()


def global_registry() -> MetricsRegistry:
    """The process-wide default registry (standard collectors
    installed), shared by every instrumented module, the service's
    ``metrics`` op and the ``--metrics-port`` listener."""
    global _GLOBAL
    with _GLOBAL_LOCK:
        if _GLOBAL is None:
            _GLOBAL = MetricsRegistry()
            install_standard_collectors(_GLOBAL)
        return _GLOBAL
