"""Declarative latency/error SLOs evaluated into burn-rate gauges.

PR 6 gave the service latency *histograms*; this module turns them
into an **answer**: is the service meeting its objective, and how
fast is it spending its error budget?  An SLO here is one declarative
spec string —

* ``p99=250ms`` — 99% of requests complete within 250 ms (the error
  budget is the residual 1%);
* ``p95=1s@2m`` — same shape, explicit evaluation window;
* ``error_rate=1%`` — at most 1% of requests answer ``ok=false``.

``repro-imin serve --slo p99=250ms`` (repeatable) wires the parsed
SLOs into an :class:`SLOTracker` over the shared registry's existing
``repro_request_duration_seconds`` / ``repro_requests_total`` /
``repro_request_errors_total`` families — the SLO layer *reads* the
same numbers every scrape already sees; it adds no new accounting to
the request path.

The headline output is the **burn rate**: the fraction of requests
violating the objective, divided by the budgeted fraction.  Burn rate
1.0 means the budget is being spent exactly as fast as it accrues;
2.0 means twice as fast (half the window's budget will be gone at the
halfway mark); under 1.0 is sustainable.  This is the standard SRE
alerting quantity because it is load-independent — a threshold on
qps or raw p99 moves with traffic, a burn rate does not.

Windowing: the underlying families are cumulative since process
start, so the tracker keeps a short ring of timestamped snapshots and
differences the newest against the oldest one inside each SLO's
window.  Snapshots are taken whenever the tracker is evaluated — each
metrics scrape and each ``stats`` op — so the effective resolution is
the scrape cadence (and before two snapshots exist, the since-start
totals stand in).  Latency thresholds are resolved against histogram
buckets with linear interpolation inside the straddling bucket; pick
thresholds on bucket bounds (the defaults include 0.25 s, 0.5 s, 1 s
...) for exact answers.

Exported gauges (one child per SLO, label ``slo``):

* ``repro_slo_burn_rate`` — windowed budget spend rate (the alerting
  signal);
* ``repro_slo_bad_fraction`` — windowed fraction of requests
  violating the objective;
* ``repro_slo_breached`` — 1 when burn rate > 1, else 0.
"""

from __future__ import annotations

import re
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Sequence

from .metrics import global_registry, MetricsRegistry

__all__ = [
    "DEFAULT_WINDOW_SECONDS",
    "SLO",
    "SLOTracker",
    "parse_slo",
]

DEFAULT_WINDOW_SECONDS = 300.0
"""Default burn-rate window (5 minutes, the classic fast-burn page)."""

_SPEC_RE = re.compile(
    r"""^\s*
    (?P<kind>p(?P<quantile>\d{1,2}(?:\.\d+)?)|error_rate)
    \s*=\s*
    (?P<value>\d+(?:\.\d+)?)\s*(?P<unit>ms|s|%)?
    (?:\s*@\s*(?P<window>\d+(?:\.\d+)?)\s*(?P<window_unit>s|m|h))?
    \s*$""",
    re.VERBOSE,
)

_WINDOW_SCALE = {"s": 1.0, "m": 60.0, "h": 3600.0}


@dataclass(frozen=True)
class SLO:
    """One parsed objective (see :func:`parse_slo` for the grammar).

    ``objective`` is the *error budget* as a fraction of requests —
    for ``p99=250ms`` it is 0.01 (the 1% of requests allowed over the
    threshold), for ``error_rate=1%`` it is 0.01 directly.
    """

    spec: str
    kind: str  # "latency" | "error_rate"
    objective: float
    threshold_s: float | None = None  # latency SLOs only
    quantile: float | None = None  # latency SLOs only
    window_s: float = DEFAULT_WINDOW_SECONDS

    @property
    def name(self) -> str:
        """Label-safe slug: ``p99=250ms`` -> ``p99_250ms``."""
        return (
            self.spec.replace("=", "_")
            .replace("%", "pct")
            .replace("@", "_")
            .replace(".", "p")
            .replace(" ", "")
        )

    def as_dict(self) -> dict[str, object]:
        out: dict[str, object] = {
            "spec": self.spec,
            "name": self.name,
            "kind": self.kind,
            "objective": self.objective,
            "window_seconds": self.window_s,
        }
        if self.kind == "latency":
            out["quantile"] = self.quantile
            out["threshold_ms"] = round(self.threshold_s * 1e3, 6)
        return out


def parse_slo(spec: str) -> SLO:
    """``p99=250ms`` / ``p95=1s@2m`` / ``error_rate=1%`` -> :class:`SLO`.

    Raises ``ValueError`` with the offending spec on any malformed
    input — the CLI surfaces it verbatim.
    """
    match = _SPEC_RE.match(spec)
    if match is None:
        raise ValueError(
            f"bad SLO spec {spec!r}: expected pNN=<latency>[@window] "
            "(e.g. p99=250ms, p95=1s@2m) or error_rate=<percent> "
            "(e.g. error_rate=1%)"
        )
    window_s = DEFAULT_WINDOW_SECONDS
    if match["window"] is not None:
        window_s = float(match["window"]) * _WINDOW_SCALE[
            match["window_unit"]
        ]
        if window_s <= 0:
            raise ValueError(f"bad SLO spec {spec!r}: empty window")
    value = float(match["value"])
    unit = match["unit"]
    normalized = re.sub(r"\s+", "", spec)
    if match["kind"] == "error_rate":
        if unit == "%":
            value /= 100.0
        elif unit is not None:
            raise ValueError(
                f"bad SLO spec {spec!r}: error_rate takes a percent "
                "or a bare fraction, not a duration"
            )
        if not 0 < value < 1:
            raise ValueError(
                f"bad SLO spec {spec!r}: error budget must be in (0, 1)"
            )
        return SLO(
            spec=normalized,
            kind="error_rate",
            objective=value,
            window_s=window_s,
        )
    quantile = float(match["quantile"]) / 100.0
    if not 0 < quantile < 1:
        raise ValueError(
            f"bad SLO spec {spec!r}: quantile must be in (0, 100)"
        )
    if unit == "ms":
        threshold_s = value / 1e3
    elif unit == "s":
        threshold_s = value
    else:
        raise ValueError(
            f"bad SLO spec {spec!r}: latency threshold needs a unit "
            "(ms or s)"
        )
    if threshold_s <= 0:
        raise ValueError(f"bad SLO spec {spec!r}: empty threshold")
    return SLO(
        spec=normalized,
        kind="latency",
        objective=1.0 - quantile,
        threshold_s=threshold_s,
        quantile=quantile,
        window_s=window_s,
    )


# ----------------------------------------------------------------------
# evaluation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _Snapshot:
    """One timestamped reading of the request-level families, summed
    across label children (per-op series collapse into one total)."""

    at: float
    cumulative: tuple[int, ...]  # histogram buckets incl. +Inf
    count: int
    requests: float
    errors: float


class SLOTracker:
    """Evaluate :class:`SLO` objectives from a registry's request
    families; export burn-rate gauges back into the same registry.

    The tracker is read-only over the request path: it get-or-creates
    the same families the service records into (a no-op when they
    exist) and snapshots them at evaluation time.  ``now`` is
    injectable for tests.
    """

    def __init__(
        self,
        slos: Sequence[SLO],
        registry: MetricsRegistry | None = None,
        now: Callable[[], float] = time.monotonic,
    ) -> None:
        if not slos:
            raise ValueError("SLOTracker needs at least one SLO")
        names = [slo.name for slo in slos]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate SLO specs: {names}")
        self.slos = tuple(slos)
        self._now = now
        self._registry = (
            registry if registry is not None else global_registry()
        )
        self._latency = self._registry.histogram(
            "repro_request_duration_seconds",
            "Wall-clock request latency through BlockerService.handle",
            labels=("op",),
        )
        self._requests = self._registry.counter(
            "repro_requests_total",
            "Service requests dispatched, by op",
            labels=("op",),
        )
        self._errors = self._registry.counter(
            "repro_request_errors_total",
            "Service requests answered with ok=false",
        )
        self._max_window = max(slo.window_s for slo in self.slos)
        self._snapshots: deque[_Snapshot] = deque()
        self._lock = threading.Lock()
        self._last_eval: tuple[float, list[dict]] | None = None
        self._register_gauges()

    # ------------------------------------------------------------------
    # snapshots
    # ------------------------------------------------------------------
    def _take_snapshot(self) -> _Snapshot:
        bounds = self._latency.buckets
        totals = [0] * (len(bounds) + 1)
        count = 0
        for _, child in self._latency.children():
            cumulative, _, child_count = child.snapshot()
            for i, value in enumerate(cumulative):
                totals[i] += value
            count += child_count
        requests = sum(
            child.value for _, child in self._requests.children()
        )
        return _Snapshot(
            at=self._now(),
            cumulative=tuple(totals),
            count=count,
            requests=requests,
            errors=self._errors.value,
        )

    def _window_base(
        self, snapshots: "deque[_Snapshot]", now: float, window_s: float
    ) -> _Snapshot | None:
        """The oldest retained snapshot inside the window, or None
        when the window has no earlier reading (young process or first
        scrape) — callers then fall back to since-start totals."""
        base = None
        for snap in snapshots:
            if snap.at >= now - window_s:
                base = snap
                break
        if base is None or now - base.at <= 0:
            return None
        return base

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def evaluate(self) -> list[dict]:
        """One reading per SLO (records a snapshot; results memoised
        for 0.25 s so the gauge callbacks of one scrape share a single
        evaluation)."""
        with self._lock:
            now = self._now()
            if (
                self._last_eval is not None
                and now - self._last_eval[0] < 0.25
            ):
                return self._last_eval[1]
            current = self._take_snapshot()
            results = [
                self._evaluate_one(slo, current) for slo in self.slos
            ]
            self._snapshots.append(current)
            horizon = now - self._max_window
            while (
                len(self._snapshots) > 1
                and self._snapshots[0].at < horizon
                # keep one snapshot *older* than the horizon so every
                # window always has a base to difference against
                and self._snapshots[1].at <= horizon
            ):
                self._snapshots.popleft()
            self._last_eval = (now, results)
            return results

    def _evaluate_one(self, slo: SLO, current: _Snapshot) -> dict:
        base = self._window_base(
            self._snapshots, current.at, slo.window_s
        )
        if slo.kind == "latency":
            total = current.count - (base.count if base else 0)
            base_cum = (
                base.cumulative if base else (0,) * len(current.cumulative)
            )
            delta = [
                c - b for c, b in zip(current.cumulative, base_cum)
            ]
            good = _good_below(
                self._latency.buckets, delta, slo.threshold_s
            )
            bad = max(0.0, total - good)
        else:
            total = current.requests - (base.requests if base else 0.0)
            bad = max(
                0.0, current.errors - (base.errors if base else 0.0)
            )
        bad_fraction = (bad / total) if total > 0 else 0.0
        burn_rate = bad_fraction / slo.objective
        return {
            **slo.as_dict(),
            "requests": round(total, 3),
            "bad_requests": round(bad, 3),
            "bad_fraction": round(bad_fraction, 6),
            "burn_rate": round(burn_rate, 4),
            "breached": burn_rate > 1.0,
            "windowed": base is not None,
        }

    def as_dict(self) -> dict[str, object]:
        """The ``slo`` section of the service ``stats`` op."""
        return {"slos": self.evaluate()}

    # ------------------------------------------------------------------
    # gauges
    # ------------------------------------------------------------------
    def _register_gauges(self) -> None:
        def field(key: str):
            def collect() -> dict[tuple[str, ...], float]:
                return {
                    (entry["name"],): float(entry[key])
                    for entry in self.evaluate()
                }

            return collect

        self._registry.register_callback(
            "repro_slo_burn_rate",
            "Windowed error-budget spend rate per SLO (1.0 = budget "
            "spent exactly as fast as it accrues)",
            field("burn_rate"),
            labels=("slo",),
        )
        self._registry.register_callback(
            "repro_slo_bad_fraction",
            "Windowed fraction of requests violating the SLO",
            field("bad_fraction"),
            labels=("slo",),
        )
        self._registry.register_callback(
            "repro_slo_breached",
            "1 while the SLO's burn rate exceeds 1.0, else 0",
            field("breached"),
            labels=("slo",),
        )


def _good_below(
    bounds: tuple[float, ...], delta: list[int], threshold_s: float
) -> float:
    """Requests at or under ``threshold_s`` given cumulative bucket
    deltas — exact when the threshold sits on a bucket bound, linearly
    interpolated inside the straddling bucket otherwise."""
    previous_bound = 0.0
    previous_cum = 0
    for bound, cum in zip(bounds, delta[:-1]):
        if threshold_s >= bound:
            previous_bound, previous_cum = bound, cum
            continue
        width = bound - previous_bound
        if width <= 0:  # pragma: no cover - bounds are distinct
            return float(cum)
        fraction = (threshold_s - previous_bound) / width
        return previous_cum + (cum - previous_cum) * fraction
    return float(previous_cum) if threshold_s < float("inf") else float(
        delta[-1]
    )
