"""Prometheus scrape endpoint: a tiny stdlib HTTP listener.

``repro-imin serve --metrics-port N`` starts one of these next to the
JSON-lines TCP server so a Prometheus scraper (or ``curl``) can pull
the registry without speaking the service protocol:

* ``GET /metrics`` — exposition text (0.0.4), the scrape target;
* ``GET /``, ``GET /healthz`` — liveness for load balancers: 200 with
  a small JSON body (status, package version, Python version, uptime
  since the listener bound);
* anything else — 404.

The listener is read-only over the registry (rendering never takes a
metric lock thanks to :meth:`MetricsRegistry.collect`'s snapshot
semantics) and runs on daemon threads, so a wedged scraper can never
hold up request serving or process exit.
"""

from __future__ import annotations

import json
import platform
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable

from .exposition import CONTENT_TYPE, render_text
from .metrics import global_registry, MetricsRegistry, package_version

__all__ = ["MetricsServer", "start_metrics_server"]

# kept as an alias: this helper moved to repro.obs.metrics when the
# build-info gauge needed it outside the HTTP listener
_package_version = package_version


class _MetricsHandler(BaseHTTPRequestHandler):
    server_version = "repro-obs/1"

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        path = self.path.split("?", 1)[0]
        if path == "/metrics":
            if self.server.render_fn is not None:
                try:
                    text = self.server.render_fn()
                except Exception:  # noqa: BLE001 - degrade, don't 500
                    text = render_text(self.server.registry)
            else:
                text = render_text(self.server.registry)
            self._reply(200, CONTENT_TYPE, text.encode("utf-8"))
        elif path in ("/", "/healthz"):
            health = {
                "status": "ok",
                "version": self.server.build_version,
                "python": platform.python_version(),
                "uptime_seconds": round(
                    time.monotonic() - self.server.started_at, 3
                ),
            }
            if self.server.health_fn is not None:
                try:
                    health.update(self.server.health_fn())
                except Exception:  # noqa: BLE001 - a dead supervisor
                    health["status"] = "error"
            status = 200 if health.get("status") == "ok" else 503
            self._reply(
                status,
                "application/json; charset=utf-8",
                json.dumps(health, separators=(",", ":")).encode()
                + b"\n",
            )
        else:
            self._reply(
                404, "text/plain; charset=utf-8", b"not found\n"
            )

    def _reply(self, status: int, content_type: str, body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, *args) -> None:  # scrapes are not events
        pass


class MetricsServer(ThreadingHTTPServer):
    """HTTP front of one :class:`MetricsRegistry` (``port=0`` binds an
    ephemeral port; see :attr:`port`)."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        address: tuple[str, int],
        registry: MetricsRegistry,
        render_fn: Callable[[], str] | None = None,
        health_fn: Callable[[], dict] | None = None,
    ) -> None:
        super().__init__(address, _MetricsHandler)
        self.registry = registry
        self.render_fn = render_fn
        """Override for ``GET /metrics`` — how the sharded front end
        serves the cross-process aggregated page instead of just its
        own registry.  Falls back to the registry on any failure."""
        self.health_fn = health_fn
        """Extra health payload merged into ``/healthz`` — any
        ``status`` other than ``"ok"`` turns the reply into a 503
        (a shard down must fail the load balancer's probe)."""
        self.started_at = time.monotonic()
        self.build_version = package_version()

    @property
    def port(self) -> int:
        return self.server_address[1]


def start_metrics_server(
    host: str = "127.0.0.1",
    port: int = 0,
    registry: MetricsRegistry | None = None,
    render_fn: Callable[[], str] | None = None,
    health_fn: Callable[[], dict] | None = None,
) -> MetricsServer:
    """Bind and start serving (on a daemon thread); returns the server
    so callers can read the bound port and ``shutdown()`` it."""
    server = MetricsServer(
        (host, port),
        registry if registry is not None else global_registry(),
        render_fn=render_fn,
        health_fn=health_fn,
    )
    thread = threading.Thread(
        target=server.serve_forever,
        name=f"repro-metrics-{server.port}",
        daemon=True,
    )
    thread.start()
    return server
