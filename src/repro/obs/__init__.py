"""repro.obs — unified observability: metrics, tracing, ops surface.

Telemetry before this subsystem was fragmented: the sketch index, the
sample pool and the artifact cache each counted privately
(:class:`~repro.engine.sketch.SketchStats`,
:class:`~repro.engine.pool.PoolStats`,
:class:`~repro.service.cache.CacheStats`), latency only existed inside
offline bench scripts, and none of it was visible from a running
process.  This package is the shared surface, stdlib + numpy only:

:mod:`repro.obs.metrics`
    Thread-safe registry of counters, gauges and fixed-bucket
    histograms (with labels), plus callback collectors that sum the
    pre-existing stats dataclasses across live instances — the old
    attribute APIs are untouched; they *re-register* here
    (:func:`track` / :func:`install_standard_collectors`).
:mod:`repro.obs.exposition`
    Prometheus text-format (0.0.4) encoder over a registry.
:mod:`repro.obs.trace`
    Span tracing: ``with span("sketch.rebase")`` context managers with
    monotonic timers, contextvar nesting, per-request trace ids, and a
    per-span latency histogram fed on every exit.  Instrumented
    through the hot paths — pool generation, batched tree builds,
    arena rebases/gains sweeps, CELF selection, the full service
    request lifecycle.
:mod:`repro.obs.logs`
    Structured event logging (JSON lines or ``key=value``) behind one
    call-site API — ``repro-imin serve --log-json``.
:mod:`repro.obs.httpd`
    A stdlib HTTP listener serving ``GET /metrics`` for scrapers and
    ``GET /healthz`` (build/uptime JSON) for load balancers —
    ``repro-imin serve --metrics-port``.
:mod:`repro.obs.profile`
    A sampling wall-clock profiler: a daemon thread walking
    ``sys._current_frames()`` at a configurable rate into
    flamegraph-ready collapsed stacks — the service's ``profile`` op,
    ``repro-imin serve --profile-hz`` and ``repro-imin profile``.
:mod:`repro.obs.slo`
    Declarative latency/error SLOs (``p99=250ms``) evaluated from the
    existing request histograms into burn-rate gauges — ``repro-imin
    serve --slo`` and the ``slo`` section of the ``stats`` op.

Everything records into :func:`global_registry` by default; the
service's ``{"op": "metrics"}`` verb and the HTTP listener render the
same registry, so the TCP protocol and the scrape endpoint can never
disagree about what the process has done.
"""

from .exposition import CONTENT_TYPE, merge_expositions, render_text
from .httpd import MetricsServer, start_metrics_server
from .logs import EventLog, NULL_LOG
from .metrics import (
    Counter,
    DEFAULT_BUCKETS,
    Gauge,
    global_registry,
    Histogram,
    install_build_info,
    install_standard_collectors,
    MetricsRegistry,
    package_version,
    track,
    tracked,
)
from .profile import DEFAULT_HZ, SamplingProfiler
from .slo import DEFAULT_WINDOW_SECONDS, parse_slo, SLO, SLOTracker
from .trace import (
    current_trace,
    format_trace,
    iter_spans,
    new_trace,
    Span,
    span,
    Trace,
    use_trace,
)

__all__ = [
    "CONTENT_TYPE",
    "Counter",
    "DEFAULT_BUCKETS",
    "DEFAULT_HZ",
    "DEFAULT_WINDOW_SECONDS",
    "EventLog",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsServer",
    "NULL_LOG",
    "SLO",
    "SLOTracker",
    "SamplingProfiler",
    "Span",
    "Trace",
    "current_trace",
    "format_trace",
    "global_registry",
    "install_build_info",
    "install_standard_collectors",
    "iter_spans",
    "merge_expositions",
    "new_trace",
    "package_version",
    "parse_slo",
    "render_text",
    "span",
    "start_metrics_server",
    "track",
    "tracked",
    "use_trace",
]
