"""Lightweight span tracing: monotonic timers, nesting, trace ids.

A *span* times one named phase (``with span("sketch.rebase"): ...``)
on the monotonic clock.  Every completed span — traced or not —
observes the shared ``repro_span_duration_seconds{span=...}``
histogram in the global registry, so a long-lived process accumulates
per-phase latency distributions with no per-request set-up.  When a
:class:`Trace` is *active* (the serving layer activates one per
request, benchmarks via :func:`use_trace`), spans additionally record
themselves into the trace's tree: nesting follows the call stack
through a :mod:`contextvars` variable, so ``service.evaluate`` >
``sketch.rebase`` > ``sketch.treebuild`` comes out as a tree without
any plumbing through the engine's signatures.

Design constraints the hot paths impose:

* entering/exiting a span is a few attribute writes and one
  ``perf_counter`` pair — cheap enough for the rebase loop (the
  CI-gated ``bench_sketch_query.py`` runs with this instrumentation
  live, which is the acceptance check that the overhead is noise);
* exception safety: a span that exits via an exception still records
  its duration (flagged ``error``) and re-raises — a failed rebase
  must show up in the breakdown, not vanish from it;
* traces cross threads by *explicit handoff* (:func:`use_trace` in
  the executor that dequeues the work item), never implicitly —
  ``contextvars`` do not propagate to worker threads on their own.

``Trace.as_dict()`` is what the service attaches to a response when
the client asks (``"trace": true`` — ``repro-imin query --trace``);
:func:`format_trace` renders it for humans.
"""

from __future__ import annotations

import contextvars
import threading
import time
import uuid
from typing import Iterator

from .metrics import global_registry, Histogram

__all__ = [
    "Span",
    "Trace",
    "current_trace",
    "format_trace",
    "iter_spans",
    "new_trace",
    "span",
    "use_trace",
]


class Span:
    """One timed phase: name, duration, children (a finished node)."""

    __slots__ = ("name", "duration_ms", "children", "error")

    def __init__(self, name: str) -> None:
        self.name = name
        self.duration_ms: float = 0.0
        self.children: list[Span] = []
        self.error = False

    def as_dict(self) -> dict:
        out: dict = {
            "name": self.name,
            "duration_ms": round(self.duration_ms, 3),
        }
        if self.error:
            out["error"] = True
        if self.children:
            out["children"] = [c.as_dict() for c in self.children]
        return out


class Trace:
    """One request's span tree, identified by ``trace_id``.

    Span attachment is lock-guarded: the serving layer finishes spans
    for one trace from both the handler thread and the artifact
    executor thread.
    """

    __slots__ = ("trace_id", "spans", "_lock")

    def __init__(self, trace_id: str) -> None:
        self.trace_id = trace_id
        self.spans: list[Span] = []
        self._lock = threading.Lock()

    def _attach(self, parent: "Span | None", node: Span) -> None:
        with self._lock:
            (parent.children if parent is not None else self.spans).append(
                node
            )

    def add_span(self, name: str, duration_ms: float) -> Span:
        """Record an externally-timed phase (e.g. queue wait measured
        around a thread handoff) as a root-level span."""
        node = Span(name)
        node.duration_ms = float(duration_ms)
        self._attach(None, node)
        return node

    def as_dict(self) -> dict:
        with self._lock:
            spans = [s.as_dict() for s in self.spans]
        return {"trace_id": self.trace_id, "spans": spans}

    def summary(self) -> dict[str, dict[str, float]]:
        """Flat per-name aggregate: ``{name: {count, total_ms}}`` over
        the whole tree — what benchmarks attach to their reports."""
        out: dict[str, dict[str, float]] = {}

        def walk(nodes: list[Span]) -> None:
            for node in nodes:
                entry = out.setdefault(
                    node.name, {"count": 0, "total_ms": 0.0}
                )
                entry["count"] += 1
                entry["total_ms"] = round(
                    entry["total_ms"] + node.duration_ms, 3
                )
                walk(node.children)

        with self._lock:
            roots = list(self.spans)
        walk(roots)
        return out


# (active trace, innermost open span) for the current logical context
_CTX: "contextvars.ContextVar[tuple[Trace, Span | None] | None]" = (
    contextvars.ContextVar("repro_obs_ctx", default=None)
)


def new_trace(trace_id: str | None = None) -> Trace:
    """A fresh trace; ids are caller-supplied (client-sent) or
    generated (16 hex chars, unique per process lifetime)."""
    return Trace(trace_id if trace_id else uuid.uuid4().hex[:16])


def current_trace() -> Trace | None:
    ctx = _CTX.get()
    return ctx[0] if ctx is not None else None


class use_trace:
    """Activate ``trace`` for the enclosed block (and this thread).

    ``use_trace(None)`` is a no-op context manager, so call sites can
    pass through an optional trace unconditionally.
    """

    __slots__ = ("_trace", "_token")

    def __init__(self, trace: Trace | None) -> None:
        self._trace = trace
        self._token = None

    def __enter__(self) -> Trace | None:
        if self._trace is not None:
            self._token = _CTX.set((self._trace, None))
        return self._trace

    def __exit__(self, *exc_info) -> None:
        if self._token is not None:
            _CTX.reset(self._token)
            self._token = None


def _span_histogram() -> Histogram:
    return global_registry().histogram(
        "repro_span_duration_seconds",
        "Wall time of instrumented phases (spans), by span name",
        labels=("span",),
    )


class span:
    """Time a named phase; record it into the active trace (if any).

    Usable as a context manager only — re-entrant use needs distinct
    instances (each ``span(...)`` call makes one).
    """

    __slots__ = ("name", "_start", "_node", "_token")

    def __init__(self, name: str) -> None:
        self.name = name
        self._start = 0.0
        self._node: Span | None = None
        self._token = None

    def __enter__(self) -> "span":
        ctx = _CTX.get()
        if ctx is not None:
            trace, parent = ctx
            self._node = Span(self.name)
            trace._attach(parent, self._node)
            self._token = _CTX.set((trace, self._node))
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        duration = time.perf_counter() - self._start
        if self._token is not None:
            _CTX.reset(self._token)
            self._token = None
        if self._node is not None:
            self._node.duration_ms = duration * 1e3
            if exc_type is not None:
                self._node.error = True
            self._node = None
        _span_histogram().labels(self.name).observe(duration)
        # never swallow the exception: observability must not change
        # control flow


def format_trace(trace_dict: dict, indent: str = "  ") -> str:
    """Human-readable per-phase breakdown of ``Trace.as_dict()``."""
    lines = [f"trace {trace_dict.get('trace_id', '?')}"]

    def walk(nodes: "list[dict]", depth: int) -> None:
        for node in nodes:
            flag = "  !" if node.get("error") else ""
            lines.append(
                f"{indent * depth}{node['name']:<28} "
                f"{node['duration_ms']:>10.3f} ms{flag}"
            )
            walk(node.get("children", []), depth + 1)

    walk(trace_dict.get("spans", []), 1)
    return "\n".join(lines)


def iter_spans(trace_dict: dict) -> Iterator[dict]:
    """Depth-first iteration over a serialized trace's span dicts."""
    stack = list(reversed(trace_dict.get("spans", [])))
    while stack:
        node = stack.pop()
        yield node
        stack.extend(reversed(node.get("children", [])))
