"""Structured event logging for the serving layer.

One :class:`EventLog` per process surface.  In JSON mode
(``repro-imin serve --log-json``) every event is one JSON object per
line — machine-parseable, with a stable ``event`` discriminator and
whatever fields the call site attaches (``trace_id``, ``op``,
``graph``, ``duration_ms``, ...).  In human mode the same events
render as ``key=value`` lines.  Either way the serving layer calls
one API, which is what lets ``--log-json`` replace the server's bare
prints without forking the call sites.

Writes are lock-serialised so concurrent handler threads never
interleave half-lines, and each event is flushed — the log is an ops
surface; a crash must not swallow the events leading up to it.
"""

from __future__ import annotations

import datetime
import json
import sys
import threading
from typing import IO

__all__ = ["EventLog", "NULL_LOG"]


class EventLog:
    """Line-oriented event sink (JSON or ``key=value`` per event)."""

    def __init__(
        self,
        stream: "IO[str] | None" = None,
        json_mode: bool = False,
        enabled: bool = True,
    ) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self.json_mode = json_mode
        self.enabled = enabled
        self._lock = threading.Lock()

    def event(self, event: str, **fields: object) -> None:
        """Emit one event (dropping ``None``-valued fields)."""
        if not self.enabled:
            return
        payload = {k: v for k, v in fields.items() if v is not None}
        if self.json_mode:
            record = {
                "ts": datetime.datetime.now(
                    datetime.timezone.utc
                ).isoformat(timespec="milliseconds"),
                "event": event,
                **payload,
            }
            line = json.dumps(record, separators=(",", ":"), default=str)
        else:
            rendered = " ".join(
                f"{k}={_human(v)}" for k, v in payload.items()
            )
            line = f"repro.service {event}" + (
                f" {rendered}" if rendered else ""
            )
        with self._lock:
            self.stream.write(line + "\n")
            self.stream.flush()


def _human(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    if isinstance(value, str) and (" " in value or not value):
        return json.dumps(value)
    return str(value)


NULL_LOG = EventLog(enabled=False)
"""A disabled sink: library defaults log nothing unless handed a log."""
