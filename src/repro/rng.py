"""Random-number-generator plumbing shared across the library.

Every stochastic public function accepts an ``rng`` argument that may be
``None`` (fresh entropy), an integer seed, or a ready
``numpy.random.Generator``.  :func:`ensure_rng` normalises the three.
The Monte-Carlo cascade engine runs in tight Python loops where
``random.Random`` is faster than numpy scalars, so :func:`python_rng`
derives a seeded ``random.Random`` from the same source.
"""

from __future__ import annotations

import random
from typing import Union

import numpy as np

__all__ = ["RngLike", "ensure_rng", "python_rng", "spawn_rng"]

RngLike = Union[None, int, np.random.Generator]


def ensure_rng(rng: RngLike = None) -> np.random.Generator:
    """Coerce ``None`` / int seed / Generator into a Generator."""
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def python_rng(rng: RngLike = None) -> random.Random:
    """A seeded ``random.Random`` derived from the numpy source."""
    gen = ensure_rng(rng)
    return random.Random(int(gen.integers(2**63)))


def spawn_rng(rng: np.random.Generator) -> np.random.Generator:
    """Child generator with an independent stream."""
    return np.random.default_rng(rng.integers(2**63))
