"""Reachability statistics on sampled graphs (Table II of the paper).

``sigma(s, g)`` is the number of vertices reachable from ``s`` in the
sampled graph ``g``; ``sigma->u(s, g)`` is the number of vertices whose
*every* path from ``s`` passes through ``u``.  Theorem 6 identifies
``sigma->u`` with a dominator-subtree size; the brute-force versions
here exist to validate that identity in tests and to document the
semantics, not for production use.
"""

from __future__ import annotations

from collections import deque
from typing import Mapping, Sequence

__all__ = ["sigma", "sigma_through", "sigma_through_all"]

Adjacency = Mapping[int, Sequence[int]]


def _reach_count(succ: Adjacency, source: int, removed: int = -1) -> int:
    if source == removed:
        return 0
    seen = {source}
    queue = deque((source,))
    while queue:
        u = queue.popleft()
        for v in succ.get(u, ()):
            if v != removed and v not in seen:
                seen.add(v)
                queue.append(v)
    return len(seen)


def sigma(succ: Adjacency, source: int) -> int:
    """Number of vertices reachable from ``source`` (itself included)."""
    return _reach_count(succ, source)


def sigma_through(succ: Adjacency, source: int, u: int) -> int:
    """``sigma->u``: reachable vertices that become unreachable when
    ``u`` is removed (``u`` itself counts when reachable)."""
    return _reach_count(succ, source) - _reach_count(succ, source, removed=u)


def sigma_through_all(succ: Adjacency, source: int) -> dict[int, int]:
    """``sigma->u`` for every reachable ``u != source`` (brute force)."""
    base = _reach_count(succ, source)
    seen = {source}
    queue = deque((source,))
    while queue:
        w = queue.popleft()
        for v in succ.get(w, ()):
            if v not in seen:
                seen.add(v)
                queue.append(v)
    return {
        u: base - _reach_count(succ, source, removed=u)
        for u in seen
        if u != source
    }
