"""Live-edge sampling, reachability statistics and sample-size theory."""

from .estimator import (
    SpreadEstimate,
    chernoff_failure_probability,
    estimate_spread_sampled,
    required_samples,
    resolve_theta,
)
from .live_edge import EdgeSampler, ICSampler, adjacency_from_edges
from .reachability import sigma, sigma_through, sigma_through_all

__all__ = [
    "EdgeSampler",
    "ICSampler",
    "adjacency_from_edges",
    "sigma",
    "sigma_through",
    "sigma_through_all",
    "required_samples",
    "resolve_theta",
    "chernoff_failure_probability",
    "estimate_spread_sampled",
    "SpreadEstimate",
]
