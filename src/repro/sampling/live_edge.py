"""Live-edge graph sampling (Definition 4 of the paper).

A *random sampled graph* ``g ~ G`` keeps every edge ``(u, v)``
independently with probability ``p(u, v)``.  The estimator of
Algorithm 2 consumes one sampled graph per iteration as an adjacency
mapping restricted to surviving edges; this module produces those
mappings efficiently:

* all edge coins are drawn in one vectorised numpy call;
* blocking is folded into the *effective* probabilities (an edge
  incident to a blocked vertex survives with probability 0), so the hot
  loop never tests a blocked set;
* only surviving edges are touched when building adjacency, which under
  the TR model is a few percent of ``m``.

:class:`ICSampler` implements the independent cascade distribution;
:class:`~repro.models.triggering.TriggeringSampler` implements the
generalised triggering model behind the same :class:`EdgeSampler`
protocol, which is how Section V-E's extension plugs into AG/GR
unchanged.
"""

from __future__ import annotations

from typing import Iterable, Protocol, runtime_checkable

import numpy as np

from ..graph import CSRGraph, DiGraph
from ..rng import ensure_rng, RngLike

__all__ = ["EdgeSampler", "ICSampler", "adjacency_from_edges"]


@runtime_checkable
class EdgeSampler(Protocol):
    """Anything that can draw live-edge graphs and absorb blockers."""

    csr: CSRGraph

    def block(self, vertices: Iterable[int]) -> None:
        """Remove all edges incident to ``vertices`` from future draws."""

    def unblock(self, vertices: Iterable[int]) -> None:
        """Restore previously blocked vertices (GreedyReplace phase 2)."""

    def sample_surviving_edges(self) -> np.ndarray:
        """Edge positions (into the CSR arrays) surviving one draw."""


def adjacency_from_edges(
    csr: CSRGraph, positions: np.ndarray
) -> dict[int, list[int]]:
    """Adjacency mapping of the sampled graph given surviving positions."""
    src = csr.src_list
    dst = csr.indices_list
    succ: dict[int, list[int]] = {}
    for j in positions.tolist():
        u = src[j]
        nbrs = succ.get(u)
        if nbrs is None:
            succ[u] = [dst[j]]
        else:
            nbrs.append(dst[j])
    return succ


class ICSampler:
    """Live-edge sampler for the independent cascade model."""

    def __init__(self, graph: DiGraph | CSRGraph, rng: RngLike = None):
        self.csr = graph if isinstance(graph, CSRGraph) else CSRGraph(graph)
        self._gen = ensure_rng(rng)
        self._peff = self.csr.probs.copy()
        self._blocked: set[int] = set()

    @property
    def blocked(self) -> frozenset[int]:
        return frozenset(self._blocked)

    def block(self, vertices: Iterable[int]) -> None:
        """Zero the effective probability of edges touching ``vertices``.

        Incremental: each call only rewrites the edge slices of the new
        blockers, so the per-greedy-round cost is proportional to the
        blockers' degrees.
        """
        csr = self.csr
        for v in vertices:
            if v in self._blocked:
                continue
            self._blocked.add(v)
            # out-edges live in a contiguous CSR slice
            self._peff[csr.indptr[v]: csr.indptr[v + 1]] = 0.0
            # in-edges need the precomputed position index
            self._peff[self._in_positions(v)] = 0.0

    def unblock(self, vertices: Iterable[int]) -> None:
        """Restore edges of previously blocked vertices.

        Used by GreedyReplace's replacement phase.  The effective
        probabilities are rebuilt from scratch (O(m)), which is cheap
        relative to the theta sampled graphs that follow each call.
        """
        changed = False
        for v in vertices:
            if v in self._blocked:
                self._blocked.discard(v)
                changed = True
        if not changed:
            return
        self._peff = self.csr.probs.copy()
        still_blocked = list(self._blocked)
        self._blocked.clear()
        self.block(still_blocked)
        # edge-level blocks are permanent and survive vertex unblocking
        for j in getattr(self, "_blocked_edges", ()):
            self._peff[j] = 0.0

    def block_edges(self, positions: Iterable[int]) -> None:
        """Remove individual edges (by CSR position) from future draws.

        Used by the edge-blocking variant; vertex-level ``unblock`` does
        not resurrect edges removed this way.
        """
        if not hasattr(self, "_blocked_edges"):
            self._blocked_edges: set[int] = set()
        for j in positions:
            self._blocked_edges.add(int(j))
            self._peff[j] = 0.0

    def sample_surviving_edges(self) -> np.ndarray:
        mask = self._gen.random(self.csr.m) < self._peff
        return np.flatnonzero(mask)

    def sample_adjacency(self) -> dict[int, list[int]]:
        """One sampled graph as an adjacency mapping."""
        return adjacency_from_edges(self.csr, self.sample_surviving_edges())

    # ------------------------------------------------------------------
    # in-edge position index (built on first block() call)
    # ------------------------------------------------------------------
    def _in_positions(self, v: int) -> np.ndarray:
        if not hasattr(self, "_in_order"):
            order = np.argsort(self.csr.indices, kind="stable")
            counts = np.bincount(self.csr.indices, minlength=self.csr.n)
            offsets = np.zeros(self.csr.n + 1, dtype=np.int64)
            np.cumsum(counts, out=offsets[1:])
            self._in_order = order
            self._in_offsets = offsets
        return self._in_order[self._in_offsets[v]: self._in_offsets[v + 1]]
