"""Sample-size theory and spread estimation from sampled graphs.

Theorem 5 of the paper bounds the estimation error of the
dominator-subtree estimator: with
``theta >= l * (2 + eps) * n * ln(n) / (eps^2 * OPT)`` sampled graphs,
``|xi->u - OPT| < eps * OPT`` holds with probability at least
``1 - n^-l``.  :func:`required_samples` evaluates that bound;
:func:`chernoff_failure_probability` inverts it for a given theta.

:func:`estimate_spread_sampled` is the Lemma-1 estimator
``E[sigma(s, g)] = E({s}, G)`` with a normal-approximation confidence
interval — handy for sanity checks and for the theta-sweep experiment
(Figures 5/6).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from ..graph import CSRGraph, DiGraph, reachable_set_adj
from ..rng import RngLike
from .live_edge import ICSampler

__all__ = [
    "required_samples",
    "resolve_theta",
    "chernoff_failure_probability",
    "SpreadEstimate",
    "estimate_spread_sampled",
]


def required_samples(
    n: int,
    epsilon: float,
    opt_lower_bound: float,
    confidence_exponent: float = 1.0,
) -> int:
    """Theorem 5's sample count for relative error ``epsilon``.

    Parameters
    ----------
    n:
        Number of vertices in the graph.
    epsilon:
        Target relative error of the per-vertex spread-decrease
        estimate.
    opt_lower_bound:
        A lower bound on the true decrease ``OPT`` of the vertex being
        estimated; 1.0 is always safe for a reachable candidate (its own
        activation contributes at least its activation probability).
    confidence_exponent:
        The ``l`` in the ``1 - n^-l`` success probability.
    """
    if n < 2:
        raise ValueError("need n >= 2 for the log term")
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    if opt_lower_bound <= 0:
        raise ValueError("opt_lower_bound must be positive")
    bound = (
        confidence_exponent
        * (2.0 + epsilon)
        * n
        * math.log(n)
        / (epsilon * epsilon * opt_lower_bound)
    )
    return math.ceil(bound)


def resolve_theta(
    n: int,
    theta: int | None = None,
    epsilon: float | None = None,
    ell: float = 1.0,
    opt_lower_bound: float = 1.0,
    max_theta: int | None = None,
) -> int:
    """Pick the sample count: explicit ``theta`` wins, else Theorem 5.

    The one place the CLI's ``--theta`` / ``--eps`` / ``--ell`` knobs
    meet: an explicit ``theta`` is returned unchanged, otherwise
    ``epsilon`` (and the confidence exponent ``ell``) are mapped
    through :func:`required_samples`.  ``max_theta`` optionally caps
    the theory bound, which is conservative by a large constant on
    real graphs (Figure 5 of the paper shows quality is flat in theta
    well below it).
    """
    if theta is not None:
        if epsilon is not None:
            raise ValueError("pass either theta or epsilon, not both")
        if theta <= 0:
            raise ValueError("theta must be positive")
        return int(theta)
    if epsilon is None:
        raise ValueError("need an explicit theta or an epsilon target")
    bound = required_samples(
        n, epsilon, opt_lower_bound, confidence_exponent=ell
    )
    if max_theta is not None:
        bound = min(bound, int(max_theta))
    return bound


def chernoff_failure_probability(
    n: int, epsilon: float, opt: float, theta: int
) -> float:
    """Upper bound on ``Pr[|xi->u - OPT| >= eps * OPT]`` for ``theta``
    samples (the exponential bound inside the proof of Theorem 5)."""
    if theta <= 0:
        raise ValueError("theta must be positive")
    exponent = -(epsilon * epsilon) * theta * opt / (n * (2.0 + epsilon))
    return min(1.0, 2.0 * math.exp(exponent))


@dataclass(frozen=True)
class SpreadEstimate:
    """Sampled-graph spread estimate with spread-of-the-mean error bars."""

    mean: float
    std_error: float
    theta: int

    def confidence_interval(self, z: float = 1.96) -> tuple[float, float]:
        """Normal-approximation CI (default 95%)."""
        return (self.mean - z * self.std_error, self.mean + z * self.std_error)


def estimate_spread_sampled(
    graph: DiGraph | CSRGraph,
    seeds: Sequence[int],
    theta: int,
    rng: RngLike = None,
    blocked: Sequence[int] = (),
) -> SpreadEstimate:
    """Estimate ``E(S, G[V \\ blocked])`` via Lemma 1.

    Draws ``theta`` live-edge graphs and averages the size of the set
    reachable from the seeds.  For multiple seeds, reachability is taken
    from all seeds jointly (equivalent to the unified-seed transform).
    """
    if theta <= 0:
        raise ValueError("theta must be positive")
    sampler = ICSampler(graph, rng)
    sampler.block(blocked)
    seed_list = list(seeds)
    total = 0.0
    total_sq = 0.0
    for _ in range(theta):
        succ = sampler.sample_adjacency()
        # joint reachability from all seeds: virtual super-source
        seen: set[int] = set()
        for s in seed_list:
            if s not in seen:
                seen |= reachable_set_adj(succ, s)
        count = float(len(seen))
        total += count
        total_sq += count * count
    mean = total / theta
    variance = max(0.0, total_sq / theta - mean * mean)
    std_error = math.sqrt(variance / theta)
    return SpreadEstimate(mean=mean, std_error=std_error, theta=theta)
