"""Section V-E extension: blocking under the Linear Threshold model.

The triggering model generalises IC; the paper notes AG/GR work
unchanged if the sampled graphs come from triggering-set draws.  This
example runs GreedyReplace with the LT sampler on a collaboration
network (DBLP stand-in) and verifies the chosen blockers against plain
LT simulation.

Run:  python examples/triggering_model.py
"""

from repro import assign_weighted_cascade
from repro.bench import pick_seeds
from repro.core import greedy_replace, random_blockers
from repro.datasets import load_dataset
from repro.graph import reachable_set_adj
from repro.models import LinearThresholdSampler
from repro.rng import ensure_rng

RNG = 11
BUDGET = 15
THETA = 150


def lt_expected_spread(graph, seeds, blockers, rounds=1500, rng=0) -> float:
    """Expected LT spread by triggering-set live-edge simulation."""
    sampler = LinearThresholdSampler(graph, ensure_rng(rng))
    sampler.block(blockers)
    csr = sampler.csr
    src, dst = csr.src_list, csr.indices_list
    total = 0
    for _ in range(rounds):
        succ: dict[int, list[int]] = {}
        for j in sampler.sample_surviving_edges().tolist():
            succ.setdefault(src[j], []).append(dst[j])
        seen: set[int] = set()
        for s in seeds:
            if s not in seen:
                seen |= reachable_set_adj(succ, s)
        total += len(seen)
    return total / rounds


def main() -> None:
    # WC weights (1 / in-degree) sum to 1 per vertex: the classic
    # uniform LT instance
    graph = assign_weighted_cascade(load_dataset("dblp", scale=0.5))
    seeds = pick_seeds(graph, 8, rng=RNG)
    print(f"network: n={graph.n}, m={graph.m}; seeds: {seeds}")

    base = lt_expected_spread(graph, seeds, [], rng=RNG)
    print(f"LT spread without blocking: {base:.1f}")

    result = greedy_replace(
        graph,
        seeds,
        BUDGET,
        theta=THETA,
        rng=RNG,
        sampler_factory=lambda g, rng: LinearThresholdSampler(g, rng),
    )
    gr = lt_expected_spread(graph, seeds, result.blockers, rng=RNG)
    print(f"GreedyReplace (LT sampler, b={BUDGET}): {gr:.1f}")

    rand = random_blockers(graph, seeds, BUDGET, rng=RNG)
    ra = lt_expected_spread(graph, seeds, rand, rng=RNG)
    print(f"random blocking for comparison:        {ra:.1f}")

    print(
        f"\nGR cuts the LT spread by {100 * (1 - gr / base):.1f}% "
        f"(random: {100 * (1 - ra / base):.1f}%)"
    )


if __name__ == "__main__":
    main()
