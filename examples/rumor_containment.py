"""Rumor containment on a Twitter-like network (the intro's scenario).

The paper motivates IMIN with rumors spreading from multiple infected
accounts and a platform that can suspend only a handful of accounts.
This example simulates that end to end:

1. a heavy-tailed follower network (Twitter stand-in, TR probabilities);
2. a rumor outbreak starting from 15 random accounts;
3. a moderation budget of 25 suspensions;
4. comparison of all blocking strategies in the library.

Run:  python examples/rumor_containment.py
"""

from repro import assign_trivalency, evaluate_spread
from repro.bench import format_table, pick_seeds
from repro.core import (
    advanced_greedy,
    betweenness_blockers,
    degree_blockers,
    greedy_replace,
    out_degree_blockers,
    pagerank_blockers,
    random_blockers,
)
from repro.datasets import load_dataset

RNG = 2024
NUM_SOURCES = 15
BUDGET = 25
THETA = 250
EVAL_ROUNDS = 1500


def main() -> None:
    graph = assign_trivalency(load_dataset("twitter", scale=0.5), rng=RNG)
    sources = pick_seeds(graph, NUM_SOURCES, rng=RNG)
    outbreak = evaluate_spread(graph, sources, [], rounds=EVAL_ROUNDS, rng=RNG)
    print(
        f"network: n={graph.n}, m={graph.m} | rumor sources: "
        f"{NUM_SOURCES} | suspension budget: {BUDGET}"
    )
    print(f"uncontained outbreak size: {outbreak:.1f} accounts\n")

    strategies = {
        "Random": lambda: random_blockers(graph, sources, BUDGET, rng=RNG),
        "OutDegree": lambda: out_degree_blockers(graph, sources, BUDGET),
        "TotalDegree": lambda: degree_blockers(graph, sources, BUDGET),
        "PageRank": lambda: pagerank_blockers(graph, sources, BUDGET),
        "Betweenness": lambda: betweenness_blockers(
            graph, sources, BUDGET, pivots=100, rng=RNG
        ),
        "AdvancedGreedy": lambda: advanced_greedy(
            graph, sources, BUDGET, theta=THETA, rng=RNG
        ).blockers,
        "GreedyReplace": lambda: greedy_replace(
            graph, sources, BUDGET, theta=THETA, rng=RNG
        ).blockers,
    }

    rows = []
    for label, select in strategies.items():
        blockers = select()
        contained = evaluate_spread(
            graph, sources, blockers, rounds=EVAL_ROUNDS, rng=RNG
        )
        rows.append(
            [
                label,
                round(contained, 1),
                f"{100 * (1 - contained / outbreak):.1f}%",
            ]
        )
    rows.sort(key=lambda row: row[1])
    print(
        format_table(
            ["strategy", "outbreak size", "reduction"],
            rows,
            title="Containment by strategy (smaller outbreak is better)",
        )
    )


if __name__ == "__main__":
    main()
