"""IMAX vs IMIN: the two sides of influence, on one network.

Section V-B1 of the paper explains why the standard influence-
*maximization* machinery (reverse influence sampling) does not solve
influence-*minimization*.  This example makes the contrast concrete:

1. the attacker picks the most influential accounts with RIS-greedy
   (Borgs et al.) — the worst-case misinformation sources;
2. the platform answers with GreedyReplace under a suspension budget;
3. for comparison, the platform also tries "block the top influencers
   we did not seed" (the IMAX ranking as a blocking heuristic) — which
   is exactly the naive transfer the paper warns about.

Run:  python examples/imax_vs_imin.py
"""

from repro import assign_trivalency, evaluate_spread, greedy_replace
from repro.datasets import load_dataset
from repro.imax import greedy_imax

RNG = 13
ATTACK_BUDGET = 8     # misinformation sources the attacker controls
DEFENSE_BUDGET = 15   # accounts the platform can suspend
THETA = 250
EVAL_ROUNDS = 2000


def main() -> None:
    graph = assign_trivalency(load_dataset("wiki-vote", scale=0.5), rng=RNG)
    print(f"network: n={graph.n}, m={graph.m}")

    # 1. the attacker maximizes influence with RIS-greedy
    attack = greedy_imax(graph, ATTACK_BUDGET, rr_count=4000, rng=RNG)
    seeds = attack.seeds
    outbreak = evaluate_spread(graph, seeds, [], rounds=EVAL_ROUNDS, rng=RNG)
    print(
        f"attacker's IMAX seeds ({ATTACK_BUDGET}): {sorted(seeds)}  "
        f"-> expected outbreak {outbreak:.1f}"
    )

    # 2. the platform minimizes influence with GreedyReplace
    defense = greedy_replace(
        graph, seeds, DEFENSE_BUDGET, theta=THETA, rng=RNG
    )
    contained = evaluate_spread(
        graph, seeds, defense.blockers, rounds=EVAL_ROUNDS, rng=RNG
    )
    print(
        f"GreedyReplace blocking ({DEFENSE_BUDGET}): outbreak "
        f"{outbreak:.1f} -> {contained:.1f} "
        f"({100 * (1 - contained / outbreak):.1f}% reduction)"
    )

    # 3. the naive transfer: block the next-most-influential accounts
    ranking = greedy_imax(
        graph, ATTACK_BUDGET + DEFENSE_BUDGET, rr_count=4000, rng=RNG + 1
    ).seeds
    naive = [v for v in ranking if v not in set(seeds)][:DEFENSE_BUDGET]
    naive_spread = evaluate_spread(
        graph, seeds, naive, rounds=EVAL_ROUNDS, rng=RNG
    )
    print(
        f"blocking top influencers instead:  outbreak "
        f"{outbreak:.1f} -> {naive_spread:.1f} "
        f"({100 * (1 - naive_spread / outbreak):.1f}% reduction)"
    )
    print(
        "\ninfluence rank is about who *reaches* many vertices; blocking "
        "is about who *stands between*\nthe seeds and the rest — the "
        "dominator-tree estimator targets exactly the latter."
    )


if __name__ == "__main__":
    main()
