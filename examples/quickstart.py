"""Quickstart: block misinformation on a social-network stand-in.

Loads the EmailCore dataset stand-in, assigns trivalency propagation
probabilities, picks random rumor sources and compares GreedyReplace
against doing nothing and against random blocking.

Run:  python examples/quickstart.py
"""

from repro import (
    assign_trivalency,
    evaluate_spread,
    greedy_replace,
    random_blockers,
)
from repro.bench import pick_seeds
from repro.datasets import load_dataset

RNG = 7
BUDGET = 20
THETA = 200  # sampled graphs per greedy round


def main() -> None:
    # 1. a directed social graph with IC propagation probabilities
    graph = assign_trivalency(load_dataset("email-core"), rng=RNG)
    print(f"graph: n={graph.n} vertices, m={graph.m} edges")

    # 2. misinformation sources
    seeds = pick_seeds(graph, 10, rng=RNG)
    base = evaluate_spread(graph, seeds, [], rounds=2000, rng=RNG)
    print(f"seeds: {seeds}")
    print(f"expected spread without intervention: {base:.2f}")

    # 3. choose blockers with GreedyReplace (the paper's best algorithm)
    result = greedy_replace(graph, seeds, BUDGET, theta=THETA, rng=RNG)
    spread = evaluate_spread(graph, seeds, result.blockers, rounds=2000, rng=RNG)
    print(f"\nGreedyReplace blockers (b={BUDGET}): {sorted(result.blockers)}")
    print(f"expected spread after blocking:  {spread:.2f}")
    print(f"influence reduction:             {100 * (1 - spread / base):.1f}%")

    # 4. sanity baseline: random blocking barely helps
    rand = random_blockers(graph, seeds, BUDGET, rng=RNG)
    rand_spread = evaluate_spread(graph, seeds, rand, rounds=2000, rng=RNG)
    print(f"\nrandom blocking for comparison:  {rand_spread:.2f}")


if __name__ == "__main__":
    main()
