"""The paper's running example, reproduced end to end.

Walks through Examples 1–4 and Table III on the Figure 1 toy graph:

1. exact activation probabilities and the expected spread of 7.66;
2. sampled graphs, their dominator trees and the per-vertex
   expected-spread decreases of Example 2;
3. the Greedy / OutNeighbors / GreedyReplace comparison of Table III.

Run:  python examples/toy_graph_walkthrough.py
"""

from repro import exact_activation_probabilities, exact_expected_spread
from repro.core import (
    advanced_greedy,
    decrease_es_computation,
    exact_blockers,
    greedy_replace,
    out_neighbors_blockers,
)
from repro.datasets import figure1_graph, figure1_seed, V
from repro.dominator import DominatorTree
from repro.sampling import ICSampler


def name(vertex: int) -> str:
    return f"v{vertex + 1}"


def main() -> None:
    graph = figure1_graph()
    seed = figure1_seed

    # ------------------------------------------------------------------
    print("=== Example 1: exact spread ===")
    probs = exact_activation_probabilities(graph, [seed])
    for v in graph.vertices():
        print(f"  P({name(v)}) = {probs[v]:.2f}")
    print(f"  E(S, G) = {probs.sum():.2f}   (paper: 7.66)")
    print(
        f"  blocking v5 -> "
        f"{exact_expected_spread(graph, [seed], blocked=[V(5)]):.2f}"
        "   (paper: 3)"
    )

    # ------------------------------------------------------------------
    print("\n=== Example 2: a sampled graph and its dominator tree ===")
    sampler = ICSampler(graph, rng=1)
    succ = sampler.sample_adjacency()
    tree = DominatorTree(succ, seed)
    print(f"  sampled graph edges: {sum(map(len, succ.values()))}")
    print("  dominator tree (vertex [subtree size]):")
    for line in tree.render(label=name).splitlines():
        print(f"    {line}")

    print("\n  averaged over 20000 samples (Algorithm 2):")
    result = decrease_es_computation(graph, seed, theta=20000, rng=2)
    for v in graph.vertices():
        if v != seed:
            print(f"  delta[{name(v)}] = {result.delta[v]:.3f}")
    print("  (paper: v5=4.66, v9=1.11, v8=0.66, v7=0.06, others=1)")

    # ------------------------------------------------------------------
    print("\n=== Table III: algorithm comparison ===")
    print(f"{'algorithm':<16}{'b=1':<22}{'b=2'}")
    for label, run in (
        (
            "Greedy (AG)",
            lambda b: advanced_greedy(
                graph, [seed], b, theta=3000, rng=3
            ).blockers,
        ),
        (
            "OutNeighbors",
            lambda b: out_neighbors_blockers(
                graph, [seed], b, theta=3000, rng=4
            ),
        ),
        (
            "GreedyReplace",
            lambda b: greedy_replace(
                graph, [seed], b, theta=3000, rng=5
            ).blockers,
        ),
    ):
        cells = []
        for b in (1, 2):
            blockers = run(b)
            spread = exact_expected_spread(graph, [seed], blocked=blockers)
            cells.append(
                f"{{{','.join(map(name, sorted(blockers)))}}} E={spread:.2f}"
            )
        print(f"{label:<16}{cells[0]:<22}{cells[1]}")

    optimal = exact_blockers(graph, [seed], 2)
    print(
        f"\n  exhaustive optimum at b=2: "
        f"{{{','.join(name(v) for v in sorted(optimal.blockers))}}} "
        f"E={optimal.spread:.2f}"
    )


if __name__ == "__main__":
    main()
