"""Cascade timelines: how fast does blocking bend the curve?

Uses the temporal-analysis module to show *when* a rumor outbreak is
contained, not just by how much, and compares vertex blocking (GR)
against the edge-blocking variant at equivalent interdiction effort.

Run:  python examples/containment_timeline.py
"""

import numpy as np

from repro import assign_trivalency
from repro.bench import pick_seeds
from repro.core import greedy_edge_blocking, greedy_replace
from repro.datasets import load_dataset
from repro.spread import containment_report, expected_activation_curve

RNG = 5
BUDGET = 15
THETA = 150
ROUNDS = 1500
MAX_STEPS = 12


def sparkline(curve: np.ndarray) -> str:
    """Tiny text plot of a cumulative activation curve."""
    blocks = " .:-=+*#%@"
    top = max(float(curve[-1]), 1e-9)
    return "".join(
        blocks[min(int(9 * v / top), 9)] for v in curve.tolist()
    )


def main() -> None:
    graph = assign_trivalency(load_dataset("wiki-vote", scale=0.5), rng=RNG)
    seeds = pick_seeds(graph, 10, rng=RNG)
    print(f"network: n={graph.n}, m={graph.m}; {len(seeds)} rumor sources")

    # vertex blocking with GreedyReplace
    gr = greedy_replace(graph, seeds, BUDGET, theta=THETA, rng=RNG)
    report = containment_report(
        graph, seeds, gr.blockers,
        rounds=ROUNDS, rng=RNG, max_steps=MAX_STEPS,
    )
    print("\ncumulative expected activations per timestep:")
    print(f"  no intervention : {sparkline(report.unblocked_curve)} "
          f"-> {report.unblocked_curve[-1]:.1f}")
    print(f"  block {BUDGET} vertices: {sparkline(report.blocked_curve)} "
          f"-> {report.blocked_curve[-1]:.1f}")
    print(
        f"  reduction {100 * report.final_reduction:.1f}%, curves diverge "
        f"at timestep {report.divergence_step}"
    )

    # edge blocking at comparable effort (one edge ~ one moderation act)
    edge_result = greedy_edge_blocking(
        graph, seeds, BUDGET, theta=THETA, rng=RNG
    )
    trimmed = graph.copy()
    for u, v in edge_result.edges:
        if u >= 0:
            trimmed.remove_edge(u, v)
        else:
            # (-1, v) marks a unified-source edge: sever every seed -> v
            for s in seeds:
                if trimmed.has_edge(s, v):
                    trimmed.remove_edge(s, v)
    edge_curve = expected_activation_curve(
        trimmed, seeds, rounds=ROUNDS, rng=RNG, max_steps=MAX_STEPS
    )
    print(f"  block {BUDGET} edges   : {sparkline(edge_curve)} "
          f"-> {edge_curve[-1]:.1f}")
    print(
        "\nvertex blocking dominates edge blocking at equal budget — an "
        "account suspension\nremoves every incident edge at once, which "
        "is why the paper studies the vertex variant."
    )


if __name__ == "__main__":
    main()
