"""Theorems 1 and 3, executably: the DKS -> IMIN reduction.

Builds the Figure 2 construction for a small densest-k-subgraph
instance, solves both sides by brute force, and checks the promised
correspondence: minimum blocked spread <-> densest k-subgraph.  Also
demonstrates Theorem 2's supermodularity counterexample on the toy
graph.

Run:  python examples/hardness_reduction.py
"""

import random

from repro.core import exact_blockers
from repro.datasets import figure1_graph, figure1_seed
from repro.theory import (
    densest_k_subgraph_bruteforce,
    DKSInstance,
    find_supermodularity_violation,
    reduce_dks_to_imin,
)


def main() -> None:
    # ------------------------------------------------------------------
    print("=== Theorem 1: reduction from densest k-subgraph ===")
    rnd = random.Random(3)
    n = 6
    edges = tuple(
        (u, v)
        for u in range(n)
        for v in range(u + 1, n)
        if rnd.random() < 0.55
    )
    dks = DKSInstance(n, edges, k=3)
    print(f"DKS instance: n={n}, m={len(edges)}, k={dks.k}")

    subset, best_edges = densest_k_subgraph_bruteforce(dks)
    print(f"densest {dks.k}-subgraph: {subset} with {best_edges} edges")

    reduced = reduce_dks_to_imin(dks)
    print(
        f"reduced IMIN instance: n'={reduced.graph.n}, "
        f"m'={reduced.graph.m}, budget={reduced.budget}"
    )
    optimal = exact_blockers(
        reduced.graph,
        [reduced.seed],
        reduced.budget,
        candidates=list(reduced.c_vertex),
    )
    # spread = 1 + (n - k) + (m - g)  =>  g = 1 + n + m - k - spread
    recovered = 1 + n + len(edges) - dks.k - optimal.spread
    print(
        f"optimal IMIN spread = {optimal.spread:.0f} "
        f"=> recovered edge count g = {recovered:.0f}"
    )
    assert recovered == best_edges
    print("reduction verified: optimal blocking == densest k-subgraph")

    # ------------------------------------------------------------------
    print("\n=== Theorem 2: the spread function is not supermodular ===")
    witness = find_supermodularity_violation(
        figure1_graph(), [figure1_seed], max_set_size=2, rng=0
    )
    assert witness is not None
    print(f"found witness: {witness}")
    print(
        "interpretation: a blocker's marginal effect can be *larger* "
        "inside a bigger blocker set,\nso greedy has no supermodularity "
        "guarantee — the motivation for GreedyReplace."
    )


if __name__ == "__main__":
    main()
